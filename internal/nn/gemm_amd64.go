//go:build amd64

package nn

// useAVX gates the vector micro-kernels in gemm_amd64.s. The AVX path
// performs the same multiplies and adds, per output element and in the
// same order, as the scalar loops — vector lanes are just adjacent
// output elements, and the kernels use separate multiply and add
// instructions (never FMA, which rounds once instead of twice) — so
// results are bit-identical between the vector and scalar paths and
// therefore across machines.
var useAVX = cpuHasAVX()

// cpuHasAVX reports whether the CPU and OS support AVX (CPUID feature
// flag plus XGETBV confirmation that the OS preserves YMM state).
func cpuHasAVX() bool

// pairQuadAVX accumulates four B rows into two destination rows:
//
//	d0[z] += a[0]*b0[z] + a[1]*b1[z] + a[2]*b2[z] + a[3]*b3[z]
//	d1[z] += a[4]*b0[z] + a[5]*b1[z] + a[6]*b2[z] + a[7]*b3[z]
//
// for z in [0, n), with the sum reduced left to right exactly like the
// scalar expression.
//
//go:noescape
func pairQuadAVX(d0, d1, b0, b1, b2, b3 *float64, n int, a *[8]float64)

// rowQuadAVX is the one-destination-row form:
//
//	d[z] += a[0]*b0[z] + a[1]*b1[z] + a[2]*b2[z] + a[3]*b3[z]
//
//go:noescape
func rowQuadAVX(d, b0, b1, b2, b3 *float64, n int, a *[4]float64)
