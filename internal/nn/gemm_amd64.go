//go:build amd64

package nn

// useAVX gates the vector micro-kernels in gemm_amd64.s. The AVX path
// performs the same multiplies and adds, per output element and in the
// same order, as the scalar loops — vector lanes are just adjacent
// output elements, and the kernels use separate multiply and add
// instructions (never FMA, which rounds once instead of twice) — so
// results are bit-identical between the vector and scalar paths and
// therefore across machines.
var useAVX = cpuHasAVX()

// useFMA gates the opt-in fast-mode kernels (pairQuadFMA, rowQuadFMA,
// panelTile8FMA, panelTile4FMA). FMA accumulation rounds once per term
// instead of twice, so fast-mode results are NOT bit-identical to the
// default kernels — they are covered by tolerance tests, reached only
// when a caller explicitly passes fast=true through gemm, and kept out
// of training and persistence by the fastmath analyzer.
var useFMA = cpuHasFMA()

// cpuHasAVX reports whether the CPU and OS support AVX (CPUID feature
// flag plus XGETBV confirmation that the OS preserves YMM state).
func cpuHasAVX() bool

// cpuHasFMA reports whether the CPU supports FMA3 on top of AVX.
func cpuHasFMA() bool

// pairQuadAVX accumulates four B rows into two destination rows:
//
//	d0[z] += a[0]*b0[z] + a[1]*b1[z] + a[2]*b2[z] + a[3]*b3[z]
//	d1[z] += a[4]*b0[z] + a[5]*b1[z] + a[6]*b2[z] + a[7]*b3[z]
//
// for z in [0, n), with the sum reduced left to right exactly like the
// scalar expression.
//
//go:noescape
func pairQuadAVX(d0, d1, b0, b1, b2, b3 *float64, n int, a *[8]float64)

// rowQuadAVX is the one-destination-row form:
//
//	d[z] += a[0]*b0[z] + a[1]*b1[z] + a[2]*b2[z] + a[3]*b3[z]
//
//go:noescape
func rowQuadAVX(d, b0, b1, b2, b3 *float64, n int, a *[4]float64)

// pairQuadFMA and rowQuadFMA are the fast-mode forms of the quad
// kernels: each term is folded into the destination with one fused
// multiply-add (one rounding instead of two), so results differ from
// the exact kernels by a few ulps per term.
//
//go:noescape
func pairQuadFMA(d0, d1, b0, b1, b2, b3 *float64, n int, a *[8]float64)

//go:noescape
func rowQuadFMA(d, b0, b1, b2, b3 *float64, n int, a *[4]float64)

// panelTile8AVX is the fully fused narrow-panel kernel for one 8-wide
// column tile: for each of rows destination rows (row stride ldd) it
// seeds d[0:8] from bias (zero when bias is nil), accumulates all k
// terms — ascending quads with the all-four-zero skip, then the k%4
// single terms with the scalar zero skip — and applies the ReLU clamp
// when relu != 0, all while the tile stays in registers, with one store
// at the end. Every element's operation sequence (seed, quad grouping,
// reduction order, skip predicates, clamp) matches the scalar loops
// exactly, so results are bit-identical to the blocked kernel.
//
//go:noescape
func panelTile8AVX(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, k int, bias *float64, relu int)

// panelTile4AVX is the 4-wide form of panelTile8AVX, covering narrow
// destinations (4 <= n < 8) and the 4-column tail of wider panels.
//
//go:noescape
func panelTile4AVX(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, k int, bias *float64, relu int)

// panelTile8FMA and panelTile4FMA are the fast-mode panel kernels: FMA
// accumulation straight into the register tile, plus a relaxed skip
// that also drops quads/singles whose coefficients are all denormal
// (|a| < 2^-1022).
//
//go:noescape
func panelTile8FMA(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, k int, bias *float64, relu int)

//go:noescape
func panelTile4FMA(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, k int, bias *float64, relu int)

// reluAVX clamps d[0:n] in place: d[z] = max(+0, d[z]), which returns
// the input for -0, NaN, and ties — exactly the scalar "if v < 0"
// clamp.
//
//go:noescape
func reluAVX(d *float64, n int)

// pool2AVX is the window-2 channels-last max pool over one batch row:
// dst[p*ch+z] = max(src[p*step+z], src[p*step+ch+z]) for p in
// [0, outLen), z in [0, ch), with the scalar tie/NaN behaviour of
// "v := lo; if hi > v { v = hi }".
//
//go:noescape
func pool2AVX(dst, src *float64, outLen, ch, step int)
