// AVX micro-kernels for the blocked GEMM in gemm.go.
//
// Determinism contract (default mode): every output element receives
// exactly the same sequence of IEEE-754 operations as the scalar Go
// loops — four multiplies reduced left to right by three adds, then one
// add into the destination. The default kernels therefore use separate
// VMULPD/VADDPD and never FMA (which rounds once instead of twice), and
// vector lanes map to adjacent output elements, so vector width does
// not change any element's arithmetic. Results are bit-identical to the
// scalar path.
//
// The *FMA kernels at the bottom of the file are the opt-in fast mode:
// fused multiply-add accumulation (one rounding per term instead of
// two) and a relaxed skip predicate that also drops quads whose
// coefficients are all denormal (|a| < 2^-1022). They are reached only
// when a caller explicitly passes fast=true through gemm, and are
// covered by tolerance tests instead of bit-identity tests.

#include "textflag.h"

// gemmAbsMask clears the sign bit; gemmTiny is the smallest normal
// float64 (2^-1022), the fast-mode skip threshold.
DATA gemmAbsMask<>+0(SB)/8, $0x7fffffffffffffff
DATA gemmAbsMask<>+8(SB)/8, $0x7fffffffffffffff
DATA gemmAbsMask<>+16(SB)/8, $0x7fffffffffffffff
DATA gemmAbsMask<>+24(SB)/8, $0x7fffffffffffffff
GLOBL gemmAbsMask<>(SB), RODATA|NOPTR, $32

DATA gemmTiny<>+0(SB)/8, $0x0010000000000000
DATA gemmTiny<>+8(SB)/8, $0x0010000000000000
DATA gemmTiny<>+16(SB)/8, $0x0010000000000000
DATA gemmTiny<>+24(SB)/8, $0x0010000000000000
GLOBL gemmTiny<>(SB), RODATA|NOPTR, $32

// func cpuHasAVX() bool
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	// Need OSXSAVE (ECX bit 27) and AVX (ECX bit 28).
	MOVL CX, AX
	ANDL $(1<<27 | 1<<28), AX
	CMPL AX, $(1<<27 | 1<<28)
	JNE  noavx
	// XCR0 bits 1 and 2: OS preserves XMM and YMM state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET
noavx:
	MOVB $0, ret+0(FP)
	RET

// func cpuHasFMA() bool
TEXT ·cpuHasFMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	// Need FMA (ECX bit 12) on top of OSXSAVE/AVX.
	MOVL CX, AX
	ANDL $(1<<12 | 1<<27 | 1<<28), AX
	CMPL AX, $(1<<12 | 1<<27 | 1<<28)
	JNE  nofma
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  nofma
	MOVB $1, ret+0(FP)
	RET
nofma:
	MOVB $0, ret+0(FP)
	RET

// func pairQuadAVX(d0, d1, b0, b1, b2, b3 *float64, n int, a *[8]float64)
//
// d0[z] += a[0]*b0[z] + a[1]*b1[z] + a[2]*b2[z] + a[3]*b3[z]
// d1[z] += a[4]*b0[z] + a[5]*b1[z] + a[6]*b2[z] + a[7]*b3[z]
TEXT ·pairQuadAVX(SB), NOSPLIT, $0-64
	MOVQ d0+0(FP), DI
	MOVQ d1+8(FP), SI
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ b2+32(FP), R10
	MOVQ b3+40(FP), R11
	MOVQ n+48(FP), CX
	MOVQ a+56(FP), DX

	VBROADCASTSD 0(DX), Y0  // a00
	VBROADCASTSD 8(DX), Y1  // a01
	VBROADCASTSD 16(DX), Y2 // a02
	VBROADCASTSD 24(DX), Y3 // a03
	VBROADCASTSD 32(DX), Y4 // a10
	VBROADCASTSD 40(DX), Y5 // a11
	VBROADCASTSD 48(DX), Y6 // a12
	VBROADCASTSD 56(DX), Y7 // a13

	XORQ R12, R12
	MOVQ CX, R13
	SUBQ $3, R13 // vector step valid while R12 < n-3
	JLE  ptail

pvec:
	CMPQ R12, R13
	JGE  ptail
	VMOVUPD (R8)(R12*8), Y8
	VMOVUPD (R9)(R12*8), Y9
	VMOVUPD (R10)(R12*8), Y10
	VMOVUPD (R11)(R12*8), Y11

	// Row 0: ((a00*b0 + a01*b1) + a02*b2) + a03*b3, then d0 += sum.
	VMULPD  Y8, Y0, Y12
	VMULPD  Y9, Y1, Y13
	VADDPD  Y13, Y12, Y12
	VMULPD  Y10, Y2, Y13
	VADDPD  Y13, Y12, Y12
	VMULPD  Y11, Y3, Y13
	VADDPD  Y13, Y12, Y12
	VMOVUPD (DI)(R12*8), Y14
	VADDPD  Y12, Y14, Y14
	VMOVUPD Y14, (DI)(R12*8)

	// Row 1.
	VMULPD  Y8, Y4, Y12
	VMULPD  Y9, Y5, Y13
	VADDPD  Y13, Y12, Y12
	VMULPD  Y10, Y6, Y13
	VADDPD  Y13, Y12, Y12
	VMULPD  Y11, Y7, Y13
	VADDPD  Y13, Y12, Y12
	VMOVUPD (SI)(R12*8), Y14
	VADDPD  Y12, Y14, Y14
	VMOVUPD Y14, (SI)(R12*8)

	ADDQ $4, R12
	JMP  pvec

ptail:
	CMPQ R12, CX
	JGE  pdone
	VMOVSD (R8)(R12*8), X8
	VMOVSD (R9)(R12*8), X9
	VMOVSD (R10)(R12*8), X10
	VMOVSD (R11)(R12*8), X11

	VMULSD X8, X0, X12
	VMULSD X9, X1, X13
	VADDSD X13, X12, X12
	VMULSD X10, X2, X13
	VADDSD X13, X12, X12
	VMULSD X11, X3, X13
	VADDSD X13, X12, X12
	VMOVSD (DI)(R12*8), X14
	VADDSD X12, X14, X14
	VMOVSD X14, (DI)(R12*8)

	VMULSD X8, X4, X12
	VMULSD X9, X5, X13
	VADDSD X13, X12, X12
	VMULSD X10, X6, X13
	VADDSD X13, X12, X12
	VMULSD X11, X7, X13
	VADDSD X13, X12, X12
	VMOVSD (SI)(R12*8), X14
	VADDSD X12, X14, X14
	VMOVSD X14, (SI)(R12*8)

	INCQ R12
	JMP  ptail

pdone:
	VZEROUPPER
	RET

// func rowQuadAVX(d, b0, b1, b2, b3 *float64, n int, a *[4]float64)
//
// d[z] += a[0]*b0[z] + a[1]*b1[z] + a[2]*b2[z] + a[3]*b3[z]
TEXT ·rowQuadAVX(SB), NOSPLIT, $0-56
	MOVQ d+0(FP), DI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ n+40(FP), CX
	MOVQ a+48(FP), DX

	VBROADCASTSD 0(DX), Y0
	VBROADCASTSD 8(DX), Y1
	VBROADCASTSD 16(DX), Y2
	VBROADCASTSD 24(DX), Y3

	XORQ R12, R12
	MOVQ CX, R13
	SUBQ $3, R13
	JLE  rtail

rvec:
	CMPQ R12, R13
	JGE  rtail
	VMOVUPD (R8)(R12*8), Y8
	VMOVUPD (R9)(R12*8), Y9
	VMOVUPD (R10)(R12*8), Y10
	VMOVUPD (R11)(R12*8), Y11

	VMULPD  Y8, Y0, Y12
	VMULPD  Y9, Y1, Y13
	VADDPD  Y13, Y12, Y12
	VMULPD  Y10, Y2, Y13
	VADDPD  Y13, Y12, Y12
	VMULPD  Y11, Y3, Y13
	VADDPD  Y13, Y12, Y12
	VMOVUPD (DI)(R12*8), Y14
	VADDPD  Y12, Y14, Y14
	VMOVUPD Y14, (DI)(R12*8)

	ADDQ $4, R12
	JMP  rvec

rtail:
	CMPQ R12, CX
	JGE  rdone
	VMOVSD (R8)(R12*8), X8
	VMOVSD (R9)(R12*8), X9
	VMOVSD (R10)(R12*8), X10
	VMOVSD (R11)(R12*8), X11

	VMULSD X8, X0, X12
	VMULSD X9, X1, X13
	VADDSD X13, X12, X12
	VMULSD X10, X2, X13
	VADDSD X13, X12, X12
	VMULSD X11, X3, X13
	VADDSD X13, X12, X12
	VMOVSD (DI)(R12*8), X14
	VADDSD X12, X14, X14
	VMOVSD X14, (DI)(R12*8)

	INCQ R12
	JMP  rtail

rdone:
	VZEROUPPER
	RET

// func panelTile8AVX(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, k int, bias *float64, relu int)
//
// Fully fused narrow-panel kernel for one 8-wide column tile: for each
// of rows destination rows (stride ldd), the tile d[0:8] is seeded from
// bias (zero when bias is nil), accumulates every k term — quads with
// the all-four-zero skip, then the k%4 singles with the scalar zero
// skip — and is clamped by ReLU before the single store when relu != 0.
// The tile lives in Y12/Y13 for the whole row, so there is no separate
// seed pass, no scalar remainder pass, and no epilogue pass over
// memory.
//
// Bit-identity: element (i, j) starts from the same bias seed and
// accumulates the same quad-grouped terms in the same ascending-k order
// with the same skip predicates as the scalar loops (quads: VCMPPD
// equality, so -0 skips and NaN does not; singles: VCMPSD equality),
// each quad reduced left to right by VMULPD/VADDPD before one add into
// the tile, each single as one multiply and one add. The ReLU is
// MAXPD(+0, v), which returns v for v = -0 and v = NaN exactly like the
// scalar "if v < 0" clamp.
TEXT ·panelTile8AVX(SB), NOSPLIT, $0-80
	MOVQ d+0(FP), DI
	MOVQ ldd+8(FP), DX
	MOVQ a+16(FP), R14
	MOVQ lda+24(FP), R13
	MOVQ b+32(FP), BX
	MOVQ ldb+40(FP), R9
	MOVQ rows+48(FP), R15
	MOVQ k+56(FP), R11

	SHLQ   $3, DX          // ldd in bytes
	SHLQ   $3, R13         // lda in bytes
	SHLQ   $3, R9          // ldb in bytes
	LEAQ   (R9)(R9*2), R10 // 3*ldb in bytes
	VXORPD Y0, Y0, Y0      // zero: skip compares and the ReLU clamp

	MOVQ R11, R12
	ANDQ $3, R12 // singles count k%4
	SHRQ $2, R11 // quad count k/4

	// Bias seed, loaded once and reused for every row.
	MOVQ   bias+64(FP), AX
	VXORPD Y14, Y14, Y14
	VXORPD Y15, Y15, Y15
	TESTQ  AX, AX
	JZ     t8seeded
	VMOVUPD (AX), Y14
	VMOVUPD 32(AX), Y15

t8seeded:
	TESTQ R15, R15
	JZ    t8done

t8row:
	VMOVAPD Y14, Y12
	VMOVAPD Y15, Y13
	MOVQ    R14, SI // a cursor for this row
	MOVQ    BX, R8  // b cursor (rows 4q..4q+3)
	MOVQ    R11, CX
	TESTQ   CX, CX
	JZ      t8single

t8quad:
	// Skip when a[4q..4q+3] are all zero (IEEE compare: -0 skips,
	// NaN does not), like the scalar loops.
	VMOVUPD   (SI), Y1
	VCMPPD    $0, Y0, Y1, Y1
	VMOVMSKPD Y1, AX
	CMPL      AX, $0xF
	JE        t8skip

	VBROADCASTSD 0(SI), Y2
	VBROADCASTSD 8(SI), Y3
	VBROADCASTSD 16(SI), Y4
	VBROADCASTSD 24(SI), Y5

	// sum = ((a0*b0 + a1*b1) + a2*b2) + a3*b3, lanes = adjacent cols.
	VMOVUPD (R8), Y6
	VMOVUPD 32(R8), Y7
	VMULPD  Y6, Y2, Y8
	VMULPD  Y7, Y2, Y9
	VMOVUPD (R8)(R9*1), Y6
	VMOVUPD 32(R8)(R9*1), Y7
	VMULPD  Y6, Y3, Y10
	VADDPD  Y10, Y8, Y8
	VMULPD  Y7, Y3, Y10
	VADDPD  Y10, Y9, Y9
	VMOVUPD (R8)(R9*2), Y6
	VMOVUPD 32(R8)(R9*2), Y7
	VMULPD  Y6, Y4, Y10
	VADDPD  Y10, Y8, Y8
	VMULPD  Y7, Y4, Y10
	VADDPD  Y10, Y9, Y9
	VMOVUPD (R8)(R10*1), Y6
	VMOVUPD 32(R8)(R10*1), Y7
	VMULPD  Y6, Y5, Y10
	VADDPD  Y10, Y8, Y8
	VMULPD  Y7, Y5, Y10
	VADDPD  Y10, Y9, Y9

	VADDPD Y8, Y12, Y12
	VADDPD Y9, Y13, Y13

t8skip:
	ADDQ $32, SI
	LEAQ (R8)(R9*4), R8
	DECQ CX
	JNZ  t8quad

t8single:
	MOVQ  R12, CX
	TESTQ CX, CX
	JZ    t8epi

t8single1:
	// Scalar zero skip: VCMPSD equality, so -0 skips and NaN does not,
	// exactly like the Go "if av == 0 { continue }".
	VMOVSD (SI), X1
	VCMPSD $0, X0, X1, X2
	VMOVQ  X2, AX
	TESTQ  AX, AX
	JNZ    t8sskip

	VBROADCASTSD (SI), Y2
	VMOVUPD      (R8), Y6
	VMOVUPD      32(R8), Y7
	VMULPD       Y6, Y2, Y8
	VMULPD       Y7, Y2, Y9
	VADDPD       Y8, Y12, Y12
	VADDPD       Y9, Y13, Y13

t8sskip:
	ADDQ $8, SI
	ADDQ R9, R8
	DECQ CX
	JNZ  t8single1

t8epi:
	MOVQ  relu+72(FP), AX
	TESTQ AX, AX
	JZ    t8store
	// max(+0, v): v = -0 and v = NaN come through unchanged, like the
	// scalar "if v < 0" clamp.
	VMAXPD Y12, Y0, Y12
	VMAXPD Y13, Y0, Y13

t8store:
	VMOVUPD Y12, (DI)
	VMOVUPD Y13, 32(DI)
	ADDQ    DX, DI
	ADDQ    R13, R14
	DECQ    R15
	JNZ     t8row

t8done:
	VZEROUPPER
	RET

// func panelTile4AVX(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, k int, bias *float64, relu int)
//
// The 4-wide form of panelTile8AVX, for destination widths 4..7 (and
// the 4-column tail of wider narrow products). Same fusion, same
// bit-identity argument, one YMM tile instead of two.
TEXT ·panelTile4AVX(SB), NOSPLIT, $0-80
	MOVQ d+0(FP), DI
	MOVQ ldd+8(FP), DX
	MOVQ a+16(FP), R14
	MOVQ lda+24(FP), R13
	MOVQ b+32(FP), BX
	MOVQ ldb+40(FP), R9
	MOVQ rows+48(FP), R15
	MOVQ k+56(FP), R11

	SHLQ   $3, DX
	SHLQ   $3, R13
	SHLQ   $3, R9
	LEAQ   (R9)(R9*2), R10
	VXORPD Y0, Y0, Y0

	MOVQ R11, R12
	ANDQ $3, R12
	SHRQ $2, R11

	MOVQ   bias+64(FP), AX
	VXORPD Y14, Y14, Y14
	TESTQ  AX, AX
	JZ     t4seeded
	VMOVUPD (AX), Y14

t4seeded:
	TESTQ R15, R15
	JZ    t4done

t4row:
	VMOVAPD Y14, Y12
	MOVQ    R14, SI
	MOVQ    BX, R8
	MOVQ    R11, CX
	TESTQ   CX, CX
	JZ      t4single

t4quad:
	VMOVUPD   (SI), Y1
	VCMPPD    $0, Y0, Y1, Y1
	VMOVMSKPD Y1, AX
	CMPL      AX, $0xF
	JE        t4skip

	VBROADCASTSD 0(SI), Y2
	VBROADCASTSD 8(SI), Y3
	VBROADCASTSD 16(SI), Y4
	VBROADCASTSD 24(SI), Y5

	VMOVUPD (R8), Y6
	VMULPD  Y6, Y2, Y8
	VMOVUPD (R8)(R9*1), Y6
	VMULPD  Y6, Y3, Y10
	VADDPD  Y10, Y8, Y8
	VMOVUPD (R8)(R9*2), Y6
	VMULPD  Y6, Y4, Y10
	VADDPD  Y10, Y8, Y8
	VMOVUPD (R8)(R10*1), Y6
	VMULPD  Y6, Y5, Y10
	VADDPD  Y10, Y8, Y8

	VADDPD Y8, Y12, Y12

t4skip:
	ADDQ $32, SI
	LEAQ (R8)(R9*4), R8
	DECQ CX
	JNZ  t4quad

t4single:
	MOVQ  R12, CX
	TESTQ CX, CX
	JZ    t4epi

t4single1:
	VMOVSD (SI), X1
	VCMPSD $0, X0, X1, X2
	VMOVQ  X2, AX
	TESTQ  AX, AX
	JNZ    t4sskip

	VBROADCASTSD (SI), Y2
	VMOVUPD      (R8), Y6
	VMULPD       Y6, Y2, Y8
	VADDPD       Y8, Y12, Y12

t4sskip:
	ADDQ $8, SI
	ADDQ R9, R8
	DECQ CX
	JNZ  t4single1

t4epi:
	MOVQ  relu+72(FP), AX
	TESTQ AX, AX
	JZ    t4store
	VMAXPD Y12, Y0, Y12

t4store:
	VMOVUPD Y12, (DI)
	ADDQ    DX, DI
	ADDQ    R13, R14
	DECQ    R15
	JNZ     t4row

t4done:
	VZEROUPPER
	RET

// func reluAVX(d *float64, n int)
//
// In-place ReLU over d[0:n]: d[z] = max(+0, d[z]). MAXPD/MAXSD with +0
// as the first source returns the second source for -0, NaN, and ties,
// so every element matches the scalar "if v < 0 { v = 0 }" exactly.
TEXT ·reluAVX(SB), NOSPLIT, $0-16
	MOVQ   d+0(FP), DI
	MOVQ   n+8(FP), CX
	VXORPD Y0, Y0, Y0

	XORQ R12, R12
	MOVQ CX, R13
	SUBQ $3, R13
	JLE  rltail

rlvec:
	CMPQ R12, R13
	JGE  rltail
	VMOVUPD (DI)(R12*8), Y1
	VMAXPD  Y1, Y0, Y1
	VMOVUPD Y1, (DI)(R12*8)
	ADDQ    $4, R12
	JMP     rlvec

rltail:
	CMPQ R12, CX
	JGE  rldone
	VMOVSD (DI)(R12*8), X1
	VMAXSD X1, X0, X1
	VMOVSD X1, (DI)(R12*8)
	INCQ   R12
	JMP    rltail

rldone:
	VZEROUPPER
	RET

// func pool2AVX(dst, src *float64, outLen, ch, step int)
//
// Window-2 max pool over a channels-last row: for each output position
// p in [0, outLen), dst[p*ch+z] = max-rule(lo, hi) where lo =
// src[p*step+z], hi = src[p*step+ch+z], and the rule is the scalar
// "v := lo; if hi > v { v = hi }": MAXPD with hi as the first source
// returns lo for NaN in either operand and for ties (including ±0),
// exactly like the branch.
TEXT ·pool2AVX(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ outLen+16(FP), R8
	MOVQ ch+24(FP), R9
	MOVQ step+32(FP), R10

	SHLQ  $3, R10 // step in bytes
	MOVQ  R9, R11
	SHLQ  $3, R11 // ch in bytes
	TESTQ R8, R8
	JZ    p2done

p2pos:
	MOVQ SI, R12          // lo cursor
	LEAQ (SI)(R11*1), R13 // hi cursor
	XORQ CX, CX
	MOVQ R9, R14
	SUBQ $3, R14
	JLE  p2tail

p2vec:
	CMPQ CX, R14
	JGE  p2tail
	VMOVUPD (R12)(CX*8), Y1 // lo
	VMOVUPD (R13)(CX*8), Y2 // hi
	VMAXPD  Y1, Y2, Y3      // (hi > lo) ? hi : lo
	VMOVUPD Y3, (DI)(CX*8)
	ADDQ    $4, CX
	JMP     p2vec

p2tail:
	CMPQ CX, R9
	JGE  p2next
	VMOVSD (R12)(CX*8), X1
	VMOVSD (R13)(CX*8), X2
	VMAXSD X1, X2, X3
	VMOVSD X3, (DI)(CX*8)
	INCQ   CX
	JMP    p2tail

p2next:
	ADDQ R10, SI
	ADDQ R11, DI
	DECQ R8
	JNZ  p2pos

p2done:
	VZEROUPPER
	RET

// ---------------------------------------------------------------------
// Fast-mode (FMA) kernels. Opt-in only: reached when a caller passes
// fast=true through gemm AND the CPU reports FMA. Accumulation uses
// VFMADD231PD (one rounding per term), and the quad/single skip is
// relaxed to |a| < 2^-1022 — denormal coefficients are dropped, which
// perturbs a result by at most k * 2^-1020 * max|b|, far below the
// documented 1e-9 tolerance. NaN coefficients still never skip
// (|NaN| < t compares false), so non-finite propagation matches the
// exact kernels.
// ---------------------------------------------------------------------

// func pairQuadFMA(d0, d1, b0, b1, b2, b3 *float64, n int, a *[8]float64)
TEXT ·pairQuadFMA(SB), NOSPLIT, $0-64
	MOVQ d0+0(FP), DI
	MOVQ d1+8(FP), SI
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ b2+32(FP), R10
	MOVQ b3+40(FP), R11
	MOVQ n+48(FP), CX
	MOVQ a+56(FP), DX

	VBROADCASTSD 0(DX), Y0
	VBROADCASTSD 8(DX), Y1
	VBROADCASTSD 16(DX), Y2
	VBROADCASTSD 24(DX), Y3
	VBROADCASTSD 32(DX), Y4
	VBROADCASTSD 40(DX), Y5
	VBROADCASTSD 48(DX), Y6
	VBROADCASTSD 56(DX), Y7

	XORQ R12, R12
	MOVQ CX, R13
	SUBQ $3, R13
	JLE  fptail

fpvec:
	CMPQ R12, R13
	JGE  fptail
	VMOVUPD (R8)(R12*8), Y8
	VMOVUPD (R9)(R12*8), Y9
	VMOVUPD (R10)(R12*8), Y10
	VMOVUPD (R11)(R12*8), Y11

	VMOVUPD     (DI)(R12*8), Y12
	VFMADD231PD Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VMOVUPD     Y12, (DI)(R12*8)

	VMOVUPD     (SI)(R12*8), Y13
	VFMADD231PD Y8, Y4, Y13
	VFMADD231PD Y9, Y5, Y13
	VFMADD231PD Y10, Y6, Y13
	VFMADD231PD Y11, Y7, Y13
	VMOVUPD     Y13, (SI)(R12*8)

	ADDQ $4, R12
	JMP  fpvec

fptail:
	CMPQ R12, CX
	JGE  fpdone
	VMOVSD (R8)(R12*8), X8
	VMOVSD (R9)(R12*8), X9
	VMOVSD (R10)(R12*8), X10
	VMOVSD (R11)(R12*8), X11

	VMOVSD      (DI)(R12*8), X12
	VFMADD231SD X8, X0, X12
	VFMADD231SD X9, X1, X12
	VFMADD231SD X10, X2, X12
	VFMADD231SD X11, X3, X12
	VMOVSD      X12, (DI)(R12*8)

	VMOVSD      (SI)(R12*8), X13
	VFMADD231SD X8, X4, X13
	VFMADD231SD X9, X5, X13
	VFMADD231SD X10, X6, X13
	VFMADD231SD X11, X7, X13
	VMOVSD      X13, (SI)(R12*8)

	INCQ R12
	JMP  fptail

fpdone:
	VZEROUPPER
	RET

// func rowQuadFMA(d, b0, b1, b2, b3 *float64, n int, a *[4]float64)
TEXT ·rowQuadFMA(SB), NOSPLIT, $0-56
	MOVQ d+0(FP), DI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ n+40(FP), CX
	MOVQ a+48(FP), DX

	VBROADCASTSD 0(DX), Y0
	VBROADCASTSD 8(DX), Y1
	VBROADCASTSD 16(DX), Y2
	VBROADCASTSD 24(DX), Y3

	XORQ R12, R12
	MOVQ CX, R13
	SUBQ $3, R13
	JLE  frtail

frvec:
	CMPQ R12, R13
	JGE  frtail
	VMOVUPD (R8)(R12*8), Y8
	VMOVUPD (R9)(R12*8), Y9
	VMOVUPD (R10)(R12*8), Y10
	VMOVUPD (R11)(R12*8), Y11

	VMOVUPD     (DI)(R12*8), Y12
	VFMADD231PD Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VMOVUPD     Y12, (DI)(R12*8)

	ADDQ $4, R12
	JMP  frvec

frtail:
	CMPQ R12, CX
	JGE  frdone
	VMOVSD (R8)(R12*8), X8
	VMOVSD (R9)(R12*8), X9
	VMOVSD (R10)(R12*8), X10
	VMOVSD (R11)(R12*8), X11

	VMOVSD      (DI)(R12*8), X12
	VFMADD231SD X8, X0, X12
	VFMADD231SD X9, X1, X12
	VFMADD231SD X10, X2, X12
	VFMADD231SD X11, X3, X12
	VMOVSD      X12, (DI)(R12*8)

	INCQ R12
	JMP  frtail

frdone:
	VZEROUPPER
	RET

// func panelTile8FMA(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, k int, bias *float64, relu int)
//
// Fast-mode form of panelTile8AVX: FMA accumulation straight into the
// tile, relaxed |a| < 2^-1022 skip. The ReLU clamp is unchanged
// (comparison only).
TEXT ·panelTile8FMA(SB), NOSPLIT, $0-80
	MOVQ d+0(FP), DI
	MOVQ ldd+8(FP), DX
	MOVQ a+16(FP), R14
	MOVQ lda+24(FP), R13
	MOVQ b+32(FP), BX
	MOVQ ldb+40(FP), R9
	MOVQ rows+48(FP), R15
	MOVQ k+56(FP), R11

	SHLQ   $3, DX
	SHLQ   $3, R13
	SHLQ   $3, R9
	LEAQ   (R9)(R9*2), R10
	VXORPD Y0, Y0, Y0

	MOVQ R11, R12
	ANDQ $3, R12
	SHRQ $2, R11

	MOVQ   bias+64(FP), AX
	VXORPD Y14, Y14, Y14
	VXORPD Y15, Y15, Y15
	TESTQ  AX, AX
	JZ     f8seeded
	VMOVUPD (AX), Y14
	VMOVUPD 32(AX), Y15

f8seeded:
	TESTQ R15, R15
	JZ    f8done

f8row:
	VMOVAPD Y14, Y12
	VMOVAPD Y15, Y13
	MOVQ    R14, SI
	MOVQ    BX, R8
	MOVQ    R11, CX
	TESTQ   CX, CX
	JZ      f8single

f8quad:
	// Relaxed skip: all four |a| below the smallest normal.
	VMOVUPD   (SI), Y1
	VANDPD    gemmAbsMask<>(SB), Y1, Y1
	VCMPPD    $17, gemmTiny<>(SB), Y1, Y1
	VMOVMSKPD Y1, AX
	CMPL      AX, $0xF
	JE        f8skip

	VBROADCASTSD 0(SI), Y2
	VBROADCASTSD 8(SI), Y3
	VBROADCASTSD 16(SI), Y4
	VBROADCASTSD 24(SI), Y5

	VMOVUPD     (R8), Y6
	VMOVUPD     32(R8), Y7
	VFMADD231PD Y6, Y2, Y12
	VFMADD231PD Y7, Y2, Y13
	VMOVUPD     (R8)(R9*1), Y6
	VMOVUPD     32(R8)(R9*1), Y7
	VFMADD231PD Y6, Y3, Y12
	VFMADD231PD Y7, Y3, Y13
	VMOVUPD     (R8)(R9*2), Y6
	VMOVUPD     32(R8)(R9*2), Y7
	VFMADD231PD Y6, Y4, Y12
	VFMADD231PD Y7, Y4, Y13
	VMOVUPD     (R8)(R10*1), Y6
	VMOVUPD     32(R8)(R10*1), Y7
	VFMADD231PD Y6, Y5, Y12
	VFMADD231PD Y7, Y5, Y13

f8skip:
	ADDQ $32, SI
	LEAQ (R8)(R9*4), R8
	DECQ CX
	JNZ  f8quad

f8single:
	MOVQ  R12, CX
	TESTQ CX, CX
	JZ    f8epi

f8single1:
	VMOVSD (SI), X1
	VANDPD gemmAbsMask<>(SB), X1, X1
	VCMPSD $17, gemmTiny<>(SB), X1, X2
	VMOVQ  X2, AX
	TESTQ  AX, AX
	JNZ    f8sskip

	VBROADCASTSD (SI), Y2
	VMOVUPD      (R8), Y6
	VMOVUPD      32(R8), Y7
	VFMADD231PD  Y6, Y2, Y12
	VFMADD231PD  Y7, Y2, Y13

f8sskip:
	ADDQ $8, SI
	ADDQ R9, R8
	DECQ CX
	JNZ  f8single1

f8epi:
	MOVQ  relu+72(FP), AX
	TESTQ AX, AX
	JZ    f8store
	VMAXPD Y12, Y0, Y12
	VMAXPD Y13, Y0, Y13

f8store:
	VMOVUPD Y12, (DI)
	VMOVUPD Y13, 32(DI)
	ADDQ    DX, DI
	ADDQ    R13, R14
	DECQ    R15
	JNZ     f8row

f8done:
	VZEROUPPER
	RET

// func panelTile4FMA(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, k int, bias *float64, relu int)
TEXT ·panelTile4FMA(SB), NOSPLIT, $0-80
	MOVQ d+0(FP), DI
	MOVQ ldd+8(FP), DX
	MOVQ a+16(FP), R14
	MOVQ lda+24(FP), R13
	MOVQ b+32(FP), BX
	MOVQ ldb+40(FP), R9
	MOVQ rows+48(FP), R15
	MOVQ k+56(FP), R11

	SHLQ   $3, DX
	SHLQ   $3, R13
	SHLQ   $3, R9
	LEAQ   (R9)(R9*2), R10
	VXORPD Y0, Y0, Y0

	MOVQ R11, R12
	ANDQ $3, R12
	SHRQ $2, R11

	MOVQ   bias+64(FP), AX
	VXORPD Y14, Y14, Y14
	TESTQ  AX, AX
	JZ     f4seeded
	VMOVUPD (AX), Y14

f4seeded:
	TESTQ R15, R15
	JZ    f4done

f4row:
	VMOVAPD Y14, Y12
	MOVQ    R14, SI
	MOVQ    BX, R8
	MOVQ    R11, CX
	TESTQ   CX, CX
	JZ      f4single

f4quad:
	VMOVUPD   (SI), Y1
	VANDPD    gemmAbsMask<>(SB), Y1, Y1
	VCMPPD    $17, gemmTiny<>(SB), Y1, Y1
	VMOVMSKPD Y1, AX
	CMPL      AX, $0xF
	JE        f4skip

	VBROADCASTSD 0(SI), Y2
	VBROADCASTSD 8(SI), Y3
	VBROADCASTSD 16(SI), Y4
	VBROADCASTSD 24(SI), Y5

	VMOVUPD     (R8), Y6
	VFMADD231PD Y6, Y2, Y12
	VMOVUPD     (R8)(R9*1), Y6
	VFMADD231PD Y6, Y3, Y12
	VMOVUPD     (R8)(R9*2), Y6
	VFMADD231PD Y6, Y4, Y12
	VMOVUPD     (R8)(R10*1), Y6
	VFMADD231PD Y6, Y5, Y12

f4skip:
	ADDQ $32, SI
	LEAQ (R8)(R9*4), R8
	DECQ CX
	JNZ  f4quad

f4single:
	MOVQ  R12, CX
	TESTQ CX, CX
	JZ    f4epi

f4single1:
	VMOVSD (SI), X1
	VANDPD gemmAbsMask<>(SB), X1, X1
	VCMPSD $17, gemmTiny<>(SB), X1, X2
	VMOVQ  X2, AX
	TESTQ  AX, AX
	JNZ    f4sskip

	VBROADCASTSD (SI), Y2
	VMOVUPD      (R8), Y6
	VFMADD231PD  Y6, Y2, Y12

f4sskip:
	ADDQ $8, SI
	ADDQ R9, R8
	DECQ CX
	JNZ  f4single1

f4epi:
	MOVQ  relu+72(FP), AX
	TESTQ AX, AX
	JZ    f4store
	VMAXPD Y12, Y0, Y12

f4store:
	VMOVUPD Y12, (DI)
	ADDQ    DX, DI
	ADDQ    R13, R14
	DECQ    R15
	JNZ     f4row

f4done:
	VZEROUPPER
	RET
