// AVX micro-kernels for the blocked GEMM in gemm.go.
//
// Determinism contract: every output element receives exactly the same
// sequence of IEEE-754 operations as the scalar Go loops — four
// multiplies reduced left to right by three adds, then one add into the
// destination. The kernels therefore use separate VMULPD/VADDPD and
// never FMA (which rounds once instead of twice), and vector lanes map
// to adjacent output elements, so vector width does not change any
// element's arithmetic. Results are bit-identical to the scalar path.

#include "textflag.h"

// func cpuHasAVX() bool
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	// Need OSXSAVE (ECX bit 27) and AVX (ECX bit 28).
	MOVL CX, AX
	ANDL $(1<<27 | 1<<28), AX
	CMPL AX, $(1<<27 | 1<<28)
	JNE  noavx
	// XCR0 bits 1 and 2: OS preserves XMM and YMM state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET
noavx:
	MOVB $0, ret+0(FP)
	RET

// func pairQuadAVX(d0, d1, b0, b1, b2, b3 *float64, n int, a *[8]float64)
//
// d0[z] += a[0]*b0[z] + a[1]*b1[z] + a[2]*b2[z] + a[3]*b3[z]
// d1[z] += a[4]*b0[z] + a[5]*b1[z] + a[6]*b2[z] + a[7]*b3[z]
TEXT ·pairQuadAVX(SB), NOSPLIT, $0-64
	MOVQ d0+0(FP), DI
	MOVQ d1+8(FP), SI
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ b2+32(FP), R10
	MOVQ b3+40(FP), R11
	MOVQ n+48(FP), CX
	MOVQ a+56(FP), DX

	VBROADCASTSD 0(DX), Y0  // a00
	VBROADCASTSD 8(DX), Y1  // a01
	VBROADCASTSD 16(DX), Y2 // a02
	VBROADCASTSD 24(DX), Y3 // a03
	VBROADCASTSD 32(DX), Y4 // a10
	VBROADCASTSD 40(DX), Y5 // a11
	VBROADCASTSD 48(DX), Y6 // a12
	VBROADCASTSD 56(DX), Y7 // a13

	XORQ R12, R12
	MOVQ CX, R13
	SUBQ $3, R13 // vector step valid while R12 < n-3
	JLE  ptail

pvec:
	CMPQ R12, R13
	JGE  ptail
	VMOVUPD (R8)(R12*8), Y8
	VMOVUPD (R9)(R12*8), Y9
	VMOVUPD (R10)(R12*8), Y10
	VMOVUPD (R11)(R12*8), Y11

	// Row 0: ((a00*b0 + a01*b1) + a02*b2) + a03*b3, then d0 += sum.
	VMULPD  Y8, Y0, Y12
	VMULPD  Y9, Y1, Y13
	VADDPD  Y13, Y12, Y12
	VMULPD  Y10, Y2, Y13
	VADDPD  Y13, Y12, Y12
	VMULPD  Y11, Y3, Y13
	VADDPD  Y13, Y12, Y12
	VMOVUPD (DI)(R12*8), Y14
	VADDPD  Y12, Y14, Y14
	VMOVUPD Y14, (DI)(R12*8)

	// Row 1.
	VMULPD  Y8, Y4, Y12
	VMULPD  Y9, Y5, Y13
	VADDPD  Y13, Y12, Y12
	VMULPD  Y10, Y6, Y13
	VADDPD  Y13, Y12, Y12
	VMULPD  Y11, Y7, Y13
	VADDPD  Y13, Y12, Y12
	VMOVUPD (SI)(R12*8), Y14
	VADDPD  Y12, Y14, Y14
	VMOVUPD Y14, (SI)(R12*8)

	ADDQ $4, R12
	JMP  pvec

ptail:
	CMPQ R12, CX
	JGE  pdone
	VMOVSD (R8)(R12*8), X8
	VMOVSD (R9)(R12*8), X9
	VMOVSD (R10)(R12*8), X10
	VMOVSD (R11)(R12*8), X11

	VMULSD X8, X0, X12
	VMULSD X9, X1, X13
	VADDSD X13, X12, X12
	VMULSD X10, X2, X13
	VADDSD X13, X12, X12
	VMULSD X11, X3, X13
	VADDSD X13, X12, X12
	VMOVSD (DI)(R12*8), X14
	VADDSD X12, X14, X14
	VMOVSD X14, (DI)(R12*8)

	VMULSD X8, X4, X12
	VMULSD X9, X5, X13
	VADDSD X13, X12, X12
	VMULSD X10, X6, X13
	VADDSD X13, X12, X12
	VMULSD X11, X7, X13
	VADDSD X13, X12, X12
	VMOVSD (SI)(R12*8), X14
	VADDSD X12, X14, X14
	VMOVSD X14, (SI)(R12*8)

	INCQ R12
	JMP  ptail

pdone:
	VZEROUPPER
	RET

// func rowQuadAVX(d, b0, b1, b2, b3 *float64, n int, a *[4]float64)
//
// d[z] += a[0]*b0[z] + a[1]*b1[z] + a[2]*b2[z] + a[3]*b3[z]
TEXT ·rowQuadAVX(SB), NOSPLIT, $0-56
	MOVQ d+0(FP), DI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ n+40(FP), CX
	MOVQ a+48(FP), DX

	VBROADCASTSD 0(DX), Y0
	VBROADCASTSD 8(DX), Y1
	VBROADCASTSD 16(DX), Y2
	VBROADCASTSD 24(DX), Y3

	XORQ R12, R12
	MOVQ CX, R13
	SUBQ $3, R13
	JLE  rtail

rvec:
	CMPQ R12, R13
	JGE  rtail
	VMOVUPD (R8)(R12*8), Y8
	VMOVUPD (R9)(R12*8), Y9
	VMOVUPD (R10)(R12*8), Y10
	VMOVUPD (R11)(R12*8), Y11

	VMULPD  Y8, Y0, Y12
	VMULPD  Y9, Y1, Y13
	VADDPD  Y13, Y12, Y12
	VMULPD  Y10, Y2, Y13
	VADDPD  Y13, Y12, Y12
	VMULPD  Y11, Y3, Y13
	VADDPD  Y13, Y12, Y12
	VMOVUPD (DI)(R12*8), Y14
	VADDPD  Y12, Y14, Y14
	VMOVUPD Y14, (DI)(R12*8)

	ADDQ $4, R12
	JMP  rvec

rtail:
	CMPQ R12, CX
	JGE  rdone
	VMOVSD (R8)(R12*8), X8
	VMOVSD (R9)(R12*8), X9
	VMOVSD (R10)(R12*8), X10
	VMOVSD (R11)(R12*8), X11

	VMULSD X8, X0, X12
	VMULSD X9, X1, X13
	VADDSD X13, X12, X12
	VMULSD X10, X2, X13
	VADDSD X13, X12, X12
	VMULSD X11, X3, X13
	VADDSD X13, X12, X12
	VMOVSD (DI)(R12*8), X14
	VADDSD X12, X14, X14
	VMOVSD X14, (DI)(R12*8)

	INCQ R12
	JMP  rtail

rdone:
	VZEROUPPER
	RET

// func panelQuad8AVX(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, nq int)
//
// For each of rows destination rows (stride ldd), accumulate nq column
// quads into the row's 8-wide tile, skipping a quad when all four a
// values compare equal to zero. The tile lives in Y12/Y13 across the
// whole sweep; each quad's four-term sum is reduced left to right
// (VMULPD/VADDPD, no FMA) before one add into the tile, matching the
// scalar expression exactly.
TEXT ·panelQuad8AVX(SB), NOSPLIT, $0-64
	MOVQ d+0(FP), DI
	MOVQ ldd+8(FP), DX
	MOVQ a+16(FP), R14
	MOVQ lda+24(FP), R13
	MOVQ b+32(FP), BX
	MOVQ ldb+40(FP), R9
	MOVQ rows+48(FP), R15
	MOVQ nq+56(FP), R11

	SHLQ   $3, DX            // ldd in bytes
	SHLQ   $3, R13           // lda in bytes
	SHLQ   $3, R9            // ldb in bytes
	LEAQ   (R9)(R9*2), R10   // 3*ldb in bytes
	VXORPD Y0, Y0, Y0        // zero, for the quad-skip compare

	TESTQ R15, R15
	JZ    nqdone
	TESTQ R11, R11
	JZ    nqdone

nqrow:
	VMOVUPD (DI), Y12
	VMOVUPD 32(DI), Y13
	MOVQ    R14, SI // a cursor for this row
	MOVQ    BX, R8  // b cursor (rows 4q..4q+3)
	MOVQ    R11, CX

nqquad:
	// Skip when a[4q..4q+3] are all zero (IEEE compare: -0 skips,
	// NaN does not), like the scalar loops.
	VMOVUPD   (SI), Y1
	VCMPPD    $0, Y0, Y1, Y1
	VMOVMSKPD Y1, AX
	CMPL      AX, $0xF
	JE        nqskip

	VBROADCASTSD 0(SI), Y2
	VBROADCASTSD 8(SI), Y3
	VBROADCASTSD 16(SI), Y4
	VBROADCASTSD 24(SI), Y5

	// sum = ((a0*b0 + a1*b1) + a2*b2) + a3*b3, lanes = adjacent cols.
	VMOVUPD (R8), Y6
	VMOVUPD 32(R8), Y7
	VMULPD  Y6, Y2, Y8
	VMULPD  Y7, Y2, Y9
	VMOVUPD (R8)(R9*1), Y6
	VMOVUPD 32(R8)(R9*1), Y7
	VMULPD  Y6, Y3, Y10
	VADDPD  Y10, Y8, Y8
	VMULPD  Y7, Y3, Y10
	VADDPD  Y10, Y9, Y9
	VMOVUPD (R8)(R9*2), Y6
	VMOVUPD 32(R8)(R9*2), Y7
	VMULPD  Y6, Y4, Y10
	VADDPD  Y10, Y8, Y8
	VMULPD  Y7, Y4, Y10
	VADDPD  Y10, Y9, Y9
	VMOVUPD (R8)(R10*1), Y6
	VMOVUPD 32(R8)(R10*1), Y7
	VMULPD  Y6, Y5, Y10
	VADDPD  Y10, Y8, Y8
	VMULPD  Y7, Y5, Y10
	VADDPD  Y10, Y9, Y9

	VADDPD Y8, Y12, Y12
	VADDPD Y9, Y13, Y13

nqskip:
	ADDQ $32, SI
	LEAQ (R8)(R9*4), R8
	DECQ CX
	JNZ  nqquad

	VMOVUPD Y12, (DI)
	VMOVUPD Y13, 32(DI)
	ADDQ    DX, DI
	ADDQ    R13, R14
	DECQ    R15
	JNZ     nqrow

nqdone:
	VZEROUPPER
	RET
