package nn

import (
	"math"
	"math/rand"
	"testing"
)

// seedMatMul is the seed repository's MatMul kernel, kept verbatim
// (serial form) as the equivalence reference for the blocked GEMM: the
// acceptance bar is that the new kernel stays within 1e-9 of this
// implementation for every transpose combination.
func seedMatMul(a, b *Matrix, aT, bT bool) *Matrix {
	ar, ac := a.Rows, a.Cols
	if aT {
		ar, ac = ac, ar
	}
	_, bc := b.Rows, b.Cols
	if bT {
		bc = b.Rows
	}
	out := NewMatrix(ar, bc)
	for i := 0; i < ar; i++ {
		outRow := out.Data[i*bc : (i+1)*bc]
		for k := 0; k < ac; k++ {
			var av float64
			if aT {
				av = a.Data[k*a.Cols+i]
			} else {
				av = a.Data[i*a.Cols+k]
			}
			if av == 0 {
				continue
			}
			if bT {
				for j := 0; j < bc; j++ {
					outRow[j] += av * b.Data[j*b.Cols+k]
				}
			} else {
				bRow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j := 0; j < bc; j++ {
					outRow[j] += av * bRow[j]
				}
			}
		}
	}
	return out
}

// equivShapes crosses the blocked kernel's tile boundaries (col block
// 512, k block 128, transpose tile 32) as well as degenerate and odd
// shapes.
var equivShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{5, 3, 4},
	{2, 128, 512},  // exactly one tile
	{3, 129, 513},  // one past each tile boundary
	{4, 300, 700},  // several tiles, odd remainders
	{33, 40, 31},   // crosses the transpose tile
	{64, 257, 130}, // parallel path (work >= threshold)
	{1, 500, 600},  // single row, wide
	{100, 1, 100},  // k == 1 (no full unroll quads)
	{7, 6, 1},      // single column
	{5, 9, 8},      // narrow panel path, one 8-wide tile, k remainder
	{4, 130, 16},   // narrow panel, two tiles, crosses the k block
	{3, 12, 12},    // narrow panel plus 4 leftover columns
	{6, 4, 15},     // narrow panel, exactly one quad, 7 leftover columns
	{64, 257, 14},  // narrow panel on the parallel path
}

func maxAbsDiff(a, b *Matrix) float64 {
	var worst float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestMatMulIntoMatchesSeedKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("heaviest equivalence sweep (every shape x every transpose); skipped under -short")
	}
	rng := rand.New(rand.NewSource(41))
	for _, sh := range equivShapes {
		for _, aT := range []bool{false, true} {
			for _, bT := range []bool{false, true} {
				a := randMatrix(rng, sh.m, sh.k)
				if aT {
					a = randMatrix(rng, sh.k, sh.m)
				}
				b := randMatrix(rng, sh.k, sh.n)
				if bT {
					b = randMatrix(rng, sh.n, sh.k)
				}
				want := seedMatMul(a, b, aT, bT)
				got := MatMulInto(NewMatrix(sh.m, sh.n), a, b, aT, bT)
				if d := maxAbsDiff(got, want); d > 1e-9 {
					t.Fatalf("%dx%dx%d aT=%v bT=%v: max diff %g vs seed kernel", sh.m, sh.k, sh.n, aT, bT, d)
				}
				if alloc := MatMul(a, b, aT, bT); maxAbsDiff(alloc, got) != 0 {
					t.Fatalf("%dx%dx%d aT=%v bT=%v: MatMul and MatMulInto disagree", sh.m, sh.k, sh.n, aT, bT)
				}
			}
		}
	}
}

// TestMatMulSparseInputsMatchSeedKernel exercises the all-zero-quad
// skip with ReLU-like half-zero inputs.
func TestMatMulSparseInputsMatchSeedKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randMatrix(rng, 9, 300)
	for i := range a.Data {
		if a.Data[i] < 0 {
			a.Data[i] = 0
		}
	}
	b := randMatrix(rng, 300, 520)
	want := seedMatMul(a, b, false, false)
	got := MatMul(a, b, false, false)
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("sparse input: max diff %g vs seed kernel", d)
	}
}

func TestMatMulAddIntoAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randMatrix(rng, 6, 200)
	b := randMatrix(rng, 200, 530)
	dst := randMatrix(rng, 6, 530)
	base := dst.Clone()
	MatMulAddInto(dst, a, b, false, false)
	prod := seedMatMul(a, b, false, false)
	for i := range dst.Data {
		want := base.Data[i] + prod.Data[i]
		if math.Abs(dst.Data[i]-want) > 1e-9 {
			t.Fatalf("elem %d: got %v want %v", i, dst.Data[i], want)
		}
	}
}

// TestGemmFusedBiasReLU checks the epilogues: initializing the output
// with the bias row and clamping after the final k-block must equal the
// unfused add-then-ReLU sequence exactly.
func TestGemmFusedBiasReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randMatrix(rng, 5, 140)
	b := randMatrix(rng, 140, 600)
	bias := make([]float64, 600)
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}
	fused := NewMatrix(5, 600)
	gemm(fused, a, b, false, false, false, bias, true, false)

	want := seedMatMul(a, b, false, false)
	for i := 0; i < want.Rows; i++ {
		row := want.Row(i)
		for j := range row {
			row[j] += bias[j]
			if row[j] < 0 {
				row[j] = 0
			}
		}
	}
	if d := maxAbsDiff(fused, want); d > 1e-9 {
		t.Fatalf("fused bias+ReLU: max diff %g", d)
	}
}

// TestGemmPanelsMatchesBlockedKernel pins the panel kernel
// bit-identical to the blocked kernel — not merely close: the panel
// path serves every non-accumulating product while the blocked kernel
// serves accumulation, and the repo's equivalence guarantees require
// the results to agree in every bit. Inputs include -0 values and
// fully zero quads so the skip predicate, the scalar k remainder,
// leftover columns, and the bias/ReLU epilogues are all crossed.
func TestGemmPanelsMatchesBlockedKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	shapes := []struct{ m, k, n int }{
		{1, 4, 8},
		{5, 9, 8},
		{4, 130, 16},
		{3, 12, 12},
		{6, 4, 15},
		{7, 3, 6},     // no full quad: the singles sweep carries all of k
		{2, 257, 9},   // k remainder after the last full quad
		{3, 5, 4},     // exactly one 4-wide tile
		{4, 6, 7},     // 4-wide tile plus a 3-column blocked tail
		{5, 2, 3},     // below every tile width: blocked tail only
		{9, 131, 13},  // 8-tile, 4-tile, 1 leftover column, k across blocks
		{5, 140, 600}, // wide: crosses the blocked kernel's column tile
		{3, 300, 515}, // wide with k across blocks and a 3-column tail
	}
	for _, sh := range shapes {
		a := randMatrix(rng, sh.m, sh.k)
		for i := range a.Data {
			switch {
			case a.Data[i] < -0.8:
				a.Data[i] = math.Copysign(0, -1) // -0 must still skip
			case a.Data[i] < 0:
				a.Data[i] = 0
			}
		}
		// Zero a whole quad in every row to force the skip path.
		if sh.k >= 4 {
			for i := 0; i < sh.m; i++ {
				for z := 0; z < 4; z++ {
					a.Data[i*sh.k+z] = 0
				}
			}
		}
		b := randMatrix(rng, sh.k, sh.n)
		bias := make([]float64, sh.n)
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}
		for _, relu := range []bool{false, true} {
			for _, bi := range [][]float64{nil, bias} {
				narrow := NewMatrix(sh.m, sh.n)
				gemmPanels(narrow.Data, sh.n, a.Data, sh.k, b.Data, sh.n, 0, sh.m, sh.k, sh.n, bi, relu, false)
				blocked := NewMatrix(sh.m, sh.n)
				gemmKernel(blocked.Data, sh.n, a.Data, sh.k, b.Data, sh.n, 0, sh.m, sh.k, sh.n, false, bi, relu, false)
				for i := range narrow.Data {
					if narrow.Data[i] != blocked.Data[i] {
						t.Fatalf("%dx%dx%d relu=%v bias=%v: elem %d: narrow %v != blocked %v",
							sh.m, sh.k, sh.n, relu, bi != nil, i, narrow.Data[i], blocked.Data[i])
					}
				}
			}
		}
	}
}

// TestMatMulIntoDeterministic pins run-to-run bit-identity: blocking
// constants are fixed, so repeated products over the same inputs must
// agree in every bit regardless of scheduling.
func TestMatMulIntoDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a := randMatrix(rng, 64, 257)
	b := randMatrix(rng, 257, 130)
	ref := MatMulInto(NewMatrix(64, 130), a, b, false, false)
	for trial := 0; trial < 5; trial++ {
		got := MatMulInto(NewMatrix(64, 130), a, b, false, false)
		for i := range got.Data {
			if got.Data[i] != ref.Data[i] {
				t.Fatalf("trial %d: elem %d differs: %v vs %v", trial, i, got.Data[i], ref.Data[i])
			}
		}
	}
}

func TestMatMulIntoShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong dst shape")
		}
	}()
	MatMulInto(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(3, 4), false, false)
}

func TestMatMulIntoAliasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dst aliasing an operand")
		}
	}()
	m := NewMatrix(3, 3)
	MatMulInto(m, m, NewMatrix(3, 3), false, false)
}
