package nn

import (
	"math"
	"math/rand"
	"testing"
)

// Fast-mode acceptance: the relaxed kernels (FMA accumulation, relaxed
// denormal skipping, reciprocal-multiply softmax) are tolerance-tested
// against the default bit-exact kernels, never bit-compared. The
// bounds here are deliberately loose relative to the kernels' actual
// error (FMA removes roundings, it does not add them; the relaxed skip
// drops terms below 2^-1022 * |b|) so the suite stays robust across
// CPUs — including machines without FMA, where fast mode falls back to
// the exact kernels and every diff is zero.

// fastGemmTolerance bounds |fast - exact| for the equivalence shapes'
// N(0,1) inputs: k <= 500 terms of magnitude ~1 leave FMA-vs-exact
// differences orders of magnitude below this.
const fastGemmTolerance = 1e-9

// TestFastGemmWithinTolerance runs every equivalence shape through the
// fast kernels (panel and blocked, with and without the fused
// bias+ReLU epilogue) and bounds the divergence from the default
// kernels.
func TestFastGemmWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("full fast-vs-exact shape sweep; skipped under -short")
	}
	rng := rand.New(rand.NewSource(51))
	for _, sh := range equivShapes {
		a := randMatrix(rng, sh.m, sh.k)
		b := randMatrix(rng, sh.k, sh.n)
		bias := make([]float64, sh.n)
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}
		for _, relu := range []bool{false, true} {
			exact := NewMatrix(sh.m, sh.n)
			gemm(exact, a, b, false, false, false, bias, relu, false)
			fastOut := NewMatrix(sh.m, sh.n)
			gemm(fastOut, a, b, false, false, false, bias, relu, true)
			if d := maxAbsDiff(fastOut, exact); d > fastGemmTolerance {
				t.Fatalf("%dx%dx%d relu=%v: fast diverges from exact by %g", sh.m, sh.k, sh.n, relu, d)
			}
		}
	}
}

// TestFastGemmRelaxedSkipTolerance plants denormal coefficients — the
// values the relaxed skip is allowed to drop that the exact skip must
// keep — so the 4-wide and scalar relaxed predicates actually fire,
// and checks the total divergence stays within the fast-mode bound
// (a dropped term contributes at most 2^-1022 * max|b| per k, far
// below the FMA rounding difference on the normal terms).
func TestFastGemmRelaxedSkipTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	a := randMatrix(rng, 6, 40)
	for i := range a.Data {
		switch {
		case a.Data[i] < -0.5:
			a.Data[i] = 5e-310 // denormal: relaxed skip may drop it
		case a.Data[i] < 0:
			a.Data[i] = 0
		}
	}
	// A few rows with whole quads of denormals, so the 4-wide relaxed
	// predicate fires as a unit.
	for i := 0; i < a.Rows; i++ {
		for z := 4; z < 8; z++ {
			a.Data[i*a.Cols+z] = math.Copysign(1e-320, -1)
		}
	}
	b := randMatrix(rng, 40, 12)
	exact := NewMatrix(6, 12)
	gemm(exact, a, b, false, false, false, nil, false, false)
	fastOut := NewMatrix(6, 12)
	gemm(fastOut, a, b, false, false, false, nil, false, true)
	if d := maxAbsDiff(fastOut, exact); d > fastGemmTolerance {
		t.Fatalf("relaxed denormal skip diverges by %g", d)
	}
}

// TestFastGemmDeterministic pins fast mode's run-to-run determinism:
// relaxed precision never means nondeterminism — repeated fast
// products over the same inputs must agree in every bit.
func TestFastGemmDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := randMatrix(rng, 64, 257)
	b := randMatrix(rng, 257, 130)
	bias := make([]float64, 130)
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}
	ref := NewMatrix(64, 130)
	gemm(ref, a, b, false, false, false, bias, true, true)
	for trial := 0; trial < 5; trial++ {
		got := NewMatrix(64, 130)
		gemm(got, a, b, false, false, false, bias, true, true)
		for i := range got.Data {
			if got.Data[i] != ref.Data[i] {
				t.Fatalf("trial %d: elem %d: %v vs %v", trial, i, got.Data[i], ref.Data[i])
			}
		}
	}
}

// TestSoftmaxInPlaceFastWithinTolerance bounds the reciprocal-multiply
// softmax against the dividing one: probabilities differ by at most
// one rounding of a value <= 1.
func TestSoftmaxInPlaceFastWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	logits := randMatrix(rng, 32, 7)
	for i := range logits.Data {
		logits.Data[i] *= 10 // spread the probabilities out
	}
	exact := logits.Clone()
	SoftmaxInPlace(exact)
	fastOut := logits.Clone()
	SoftmaxInPlaceFast(fastOut)
	if d := maxAbsDiff(fastOut, exact); d > 1e-12 {
		t.Fatalf("fast softmax diverges by %g", d)
	}
	for i := 0; i < fastOut.Rows; i++ {
		var sum float64
		for _, p := range fastOut.Row(i) {
			if p < 0 || p > 1 {
				t.Fatalf("row %d: probability %v out of range", i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d: probabilities sum to %v", i, sum)
		}
	}
}

// TestNetworkFastInference covers the opt-in plumbing: the flag is off
// by default, toggles through SetFastInference, bounds inference
// divergence, and never leaks into the training forward pass.
func TestNetworkFastInference(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	net := NewNetwork(
		NewDense(30, 24, rng),
		NewReLU(),
		NewDense(24, 12, rng),
		NewReLU(),
		NewDense(12, 4, rng),
	)
	if net.FastInference() {
		t.Fatal("fast inference must be off by default")
	}
	x := randMatrix(rng, 20, 30)
	exact := net.PredictInto(nil, x)

	net.SetFastInference(true)
	if !net.FastInference() {
		t.Fatal("SetFastInference(true) did not stick")
	}
	fastOut := net.PredictInto(nil, x)
	if d := maxAbsDiff(fastOut, exact); d > fastGemmTolerance {
		t.Fatalf("fast inference diverges from exact by %g", d)
	}

	// The training forward pass must not consult the flag: with fast
	// inference on, Forward(train=true) stays byte-identical to the
	// default kernels' output.
	trainOn := net.Forward(x, true).Clone()
	net.SetFastInference(false)
	trainOff := net.Forward(x, true).Clone()
	if d := maxAbsDiff(trainOn, trainOff); d != 0 {
		t.Fatalf("training forward saw the fast flag: diff %g", d)
	}
}
