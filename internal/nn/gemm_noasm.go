//go:build !amd64

package nn

// useAVX is constant-false off amd64, so the calls below are
// dead-code-eliminated and the scalar loops in gemm.go run instead.
const useAVX = false

func pairQuadAVX(d0, d1, b0, b1, b2, b3 *float64, n int, a *[8]float64) {}

func rowQuadAVX(d, b0, b1, b2, b3 *float64, n int, a *[4]float64) {}

func panelQuad8AVX(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, nq int) {}
