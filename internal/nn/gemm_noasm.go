//go:build !amd64

package nn

// useAVX and useFMA are constant-false off amd64, so the calls below
// are dead-code-eliminated and the scalar loops in gemm.go run instead
// (fast mode degrades to the exact scalar path).
const (
	useAVX = false
	useFMA = false
)

func pairQuadAVX(d0, d1, b0, b1, b2, b3 *float64, n int, a *[8]float64) {}

func rowQuadAVX(d, b0, b1, b2, b3 *float64, n int, a *[4]float64) {}

func pairQuadFMA(d0, d1, b0, b1, b2, b3 *float64, n int, a *[8]float64) {}

func rowQuadFMA(d, b0, b1, b2, b3 *float64, n int, a *[4]float64) {}

func panelTile8AVX(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, k int, bias *float64, relu int) {
}

func panelTile4AVX(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, k int, bias *float64, relu int) {
}

func panelTile8FMA(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, k int, bias *float64, relu int) {
}

func panelTile4FMA(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, k int, bias *float64, relu int) {
}

func reluAVX(d *float64, n int) {}

func pool2AVX(dst, src *float64, outLen, ch, step int) {}
