package nn

import (
	"math/rand"
	"testing"
)

// These tests pin the sharding contract of the parallel GEMM paths:
// the M dimension is split into statically owned row ranges whose
// boundaries depend only on (m, grain, workers) — the formula
// replicated in shardRanges below, matching par.ForChunkedGrain — and
// running the kernels over ANY partition of the row space, in any
// order, produces bytes identical to one serial full-range call.
// Together the two properties make sharded products byte-identical to
// serial ones for every worker count and schedule.

// shardRanges reproduces par.ForChunkedGrain's chunk boundaries for a
// pool with the given worker count: grain = max(ceil(n/workers),
// minGrain), chunk i = [i*grain, min((i+1)*grain, n)).
func shardRanges(n, minGrain, workers int) [][2]int {
	if n <= 0 {
		return nil
	}
	grain := (n + workers - 1) / workers
	if grain < minGrain {
		grain = minGrain
	}
	var out [][2]int
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// TestShardRangesDeterministic pins the boundary formula itself: the
// same (n, grain, workers) always yields the same ranges, the ranges
// partition [0, n) exactly, and no range undercuts the grain floor
// except the final remainder.
func TestShardRangesDeterministic(t *testing.T) {
	for _, n := range []int{0, 1, 5, 63, 64, 65, 1000} {
		for _, grain := range []int{1, 7, 64, 1000} {
			for _, workers := range []int{1, 2, 3, 8, 16} {
				ref := shardRanges(n, grain, workers)
				for trial := 0; trial < 3; trial++ {
					got := shardRanges(n, grain, workers)
					if len(got) != len(ref) {
						t.Fatalf("n=%d grain=%d workers=%d: %d ranges, then %d", n, grain, workers, len(ref), len(got))
					}
					for i := range got {
						if got[i] != ref[i] {
							t.Fatalf("n=%d grain=%d workers=%d: range %d differs across runs", n, grain, workers, i)
						}
					}
				}
				next := 0
				for i, r := range ref {
					if r[0] != next || r[1] <= r[0] {
						t.Fatalf("n=%d grain=%d workers=%d: range %d = %v does not continue the partition at %d", n, grain, workers, i, r, next)
					}
					if sz := r[1] - r[0]; sz < grain && r[1] != n {
						t.Fatalf("n=%d grain=%d workers=%d: non-final range %d has size %d < grain", n, grain, workers, i, sz)
					}
					next = r[1]
				}
				if n > 0 && next != n {
					t.Fatalf("n=%d grain=%d workers=%d: ranges cover [0, %d), want [0, %d)", n, grain, workers, next, n)
				}
				if n <= 0 && ref != nil {
					t.Fatalf("n=%d: expected no ranges, got %v", n, ref)
				}
			}
		}
	}
}

// TestShardedKernelsMatchSerial runs the blocked and panel kernels
// over the static row partitions of every simulated worker count — in
// shuffled claim order, the way a real pool hands chunks to whichever
// worker is idle — and requires the assembled output to be
// byte-identical to one serial full-range call. Both default and fast
// mode must satisfy this: sharding may never change results, only
// tolerance-relaxed kernels may (and those only via the fast flag).
func TestShardedKernelsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full worker-count x shape sharding sweep; skipped under -short")
	}
	rng := rand.New(rand.NewSource(47))
	shapes := []struct{ m, k, n int }{
		{64, 257, 130}, // wide: blocked kernel, above the parallel threshold
		{64, 257, 14},  // narrow: panel kernel
		{7, 31, 9},     // below the grain: single-range fallback
		{65, 128, 512}, // odd row remainder over full tiles
	}
	for _, sh := range shapes {
		a := randMatrix(rng, sh.m, sh.k)
		b := randMatrix(rng, sh.k, sh.n)
		bias := make([]float64, sh.n)
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}
		for _, fast := range []bool{false, true} {
			runKernel := func(dst *Matrix, rlo, rhi int) {
				if sh.n <= gemmNarrowMax {
					gemmPanels(dst.Data, sh.n, a.Data, sh.k, b.Data, sh.n, rlo, rhi, sh.k, sh.n, bias, true, fast)
				} else {
					gemmKernel(dst.Data, sh.n, a.Data, sh.k, b.Data, sh.n, rlo, rhi, sh.k, sh.n, false, bias, true, fast)
				}
			}
			serial := NewMatrix(sh.m, sh.n)
			runKernel(serial, 0, sh.m)
			grain := gemmGrain(sh.k, sh.n)
			for _, workers := range []int{1, 2, 3, 8, 16} {
				ranges := shardRanges(sh.m, grain, workers)
				rng.Shuffle(len(ranges), func(i, j int) { ranges[i], ranges[j] = ranges[j], ranges[i] })
				sharded := NewMatrix(sh.m, sh.n)
				for _, r := range ranges {
					runKernel(sharded, r[0], r[1])
				}
				for i := range sharded.Data {
					if sharded.Data[i] != serial.Data[i] {
						t.Fatalf("%dx%dx%d fast=%v workers=%d: elem %d: sharded %v != serial %v",
							sh.m, sh.k, sh.n, fast, workers, i, sharded.Data[i], serial.Data[i])
					}
				}
			}
		}
	}
}

// TestGemmGrain pins the grain floor: every statically owned chunk
// clears parallelThreshold multiply-adds, and degenerate products
// still get a positive grain.
func TestGemmGrain(t *testing.T) {
	cases := []struct{ k, n, want int }{
		{1, 1, parallelThreshold},
		{256, 256, 1},
		{257, 130, 1},
		{128, 4, parallelThreshold / 512},
		{1 << 20, 1 << 20, 1},
	}
	for _, c := range cases {
		if got := gemmGrain(c.k, c.n); got != c.want {
			t.Fatalf("gemmGrain(%d, %d) = %d, want %d", c.k, c.n, got, c.want)
		}
		if g := gemmGrain(c.k, c.n); g >= 1 && c.k*c.n*g < parallelThreshold && g != 1 {
			t.Fatalf("gemmGrain(%d, %d) = %d: chunk below threshold without hitting the floor", c.k, c.n, g)
		}
	}
}

// TestMatMulIntoParallelMatchesSerialShapes crosses the public parallel
// dispatch (work >= parallelThreshold fans out over the shared pool)
// against the explicitly serial kernel: on any host, with any worker
// count, the pooled product must be byte-identical to the single-range
// kernel run.
func TestMatMulIntoParallelMatchesSerialShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	shapes := []struct{ m, k, n int }{
		{64, 257, 130},
		{200, 80, 90},
		{64, 257, 14},
		{128, 36, 12},
	}
	for _, sh := range shapes {
		a := randMatrix(rng, sh.m, sh.k)
		b := randMatrix(rng, sh.k, sh.n)
		got := MatMulInto(NewMatrix(sh.m, sh.n), a, b, false, false)
		serial := NewMatrix(sh.m, sh.n)
		if sh.n <= gemmNarrowMax {
			gemmPanels(serial.Data, sh.n, a.Data, sh.k, b.Data, sh.n, 0, sh.m, sh.k, sh.n, nil, false, false)
		} else {
			gemmKernel(serial.Data, sh.n, a.Data, sh.k, b.Data, sh.n, 0, sh.m, sh.k, sh.n, false, nil, false, false)
		}
		for i := range got.Data {
			if got.Data[i] != serial.Data[i] {
				t.Fatalf("%dx%dx%d: elem %d: pooled %v != serial kernel %v", sh.m, sh.k, sh.n, i, got.Data[i], serial.Data[i])
			}
		}
	}
}
