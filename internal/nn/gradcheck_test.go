package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericGrad estimates dLoss/dx by central differences for the network
// n with loss l and target y.
func numericGrad(n *Network, l Loss, x, y *Matrix) *Matrix {
	const eps = 1e-6
	grad := NewMatrix(x.Rows, x.Cols)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp, _ := l.Compute(n.Forward(x, false), y)
		x.Data[i] = orig - eps
		lm, _ := l.Compute(n.Forward(x, false), y)
		x.Data[i] = orig
		grad.Data[i] = (lp - lm) / (2 * eps)
	}
	return grad
}

// analyticGrads runs one forward/backward pass and returns the input
// gradient; parameter gradients accumulate into the layers. The
// forward pass must be a training pass (Backward consumes the caches
// it leaves behind); none of the checked stacks contain dropout, so
// the outputs match the inference path exactly.
func analyticGrads(n *Network, l Loss, x, y *Matrix) *Matrix {
	for _, p := range n.Params() {
		p.G.Zero()
	}
	pred := n.Forward(x, true)
	_, grad := l.Compute(pred, y)
	var dx *Matrix
	g := grad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
	dx = g
	return dx
}

// checkParamGrads verifies every parameter gradient numerically.
func checkParamGrads(t *testing.T, n *Network, l Loss, x, y *Matrix, tol float64) {
	t.Helper()
	const eps = 1e-6
	analyticGrads(n, l, x, y)
	for pi, p := range n.Params() {
		for i := range p.W.Data {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp, _ := l.Compute(n.Forward(x, false), y)
			p.W.Data[i] = orig - eps
			lm, _ := l.Compute(n.Forward(x, false), y)
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.G.Data[i]) > tol {
				t.Fatalf("param %d elem %d: numeric %v vs analytic %v", pi, i, num, p.G.Data[i])
			}
		}
	}
}

func checkInputGrads(t *testing.T, n *Network, l Loss, x, y *Matrix, tol float64) {
	t.Helper()
	dx := analyticGrads(n, l, x, y)
	num := numericGrad(n, l, x, y)
	for i := range dx.Data {
		if math.Abs(dx.Data[i]-num.Data[i]) > tol {
			t.Fatalf("input grad elem %d: numeric %v vs analytic %v", i, num.Data[i], dx.Data[i])
		}
	}
}

func TestGradDenseMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewNetwork(NewDense(4, 3, rng))
	x := randMatrix(rng, 5, 4)
	y := randMatrix(rng, 5, 3)
	checkParamGrads(t, n, MSE{}, x, y, 1e-6)
	checkInputGrads(t, n, MSE{}, x, y, 1e-6)
}

func TestGradDenseSigmoidStack(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := NewNetwork(NewDense(4, 6, rng), NewSigmoid(), NewDense(6, 2, rng))
	x := randMatrix(rng, 3, 4)
	y := randMatrix(rng, 3, 2)
	checkParamGrads(t, n, MSE{}, x, y, 1e-6)
	checkInputGrads(t, n, MSE{}, x, y, 1e-6)
}

func TestGradReLUStack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := NewNetwork(NewDense(5, 8, rng), NewReLU(), NewDense(8, 3, rng))
	// Shift inputs away from ReLU kinks for a stable numeric check.
	x := randMatrix(rng, 4, 5)
	y := randMatrix(rng, 4, 3)
	checkParamGrads(t, n, MSE{}, x, y, 1e-5)
	checkInputGrads(t, n, MSE{}, x, y, 1e-5)
}

func TestGradSoftmaxCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := NewNetwork(NewDense(6, 4, rng))
	x := randMatrix(rng, 5, 6)
	y := OneHot([]int{0, 1, 2, 3, 1}, 4)
	checkParamGrads(t, n, SoftmaxCrossEntropy{}, x, y, 1e-6)
	checkInputGrads(t, n, SoftmaxCrossEntropy{}, x, y, 1e-6)
}

func TestGradConv1D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv := NewConv1D(10, 2, 3, 3, 1, rng) // len 10, 2ch -> 3ch
	n := NewNetwork(conv)
	x := randMatrix(rng, 2, 20)
	y := randMatrix(rng, 2, conv.OutLen()*3)
	checkParamGrads(t, n, MSE{}, x, y, 1e-6)
	checkInputGrads(t, n, MSE{}, x, y, 1e-6)
}

func TestGradConv1DStride2(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	conv := NewConv1D(11, 1, 2, 3, 2, rng)
	n := NewNetwork(conv)
	x := randMatrix(rng, 3, 11)
	y := randMatrix(rng, 3, conv.OutLen()*2)
	checkParamGrads(t, n, MSE{}, x, y, 1e-6)
	checkInputGrads(t, n, MSE{}, x, y, 1e-6)
}

func TestGradMaxPool(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := NewMaxPool1D(8, 2, 2, 2)
	n := NewNetwork(pool)
	x := randMatrix(rng, 2, 16)
	y := randMatrix(rng, 2, pool.OutLen()*2)
	// Max pool is piecewise linear; points with distinct window maxima
	// give exact numeric agreement.
	checkInputGrads(t, n, MSE{}, x, y, 1e-6)
}

func TestGradFullCNNStack(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	conv := NewConv1D(12, 1, 4, 3, 1, rng) // out 10x4
	pool := NewMaxPool1D(10, 4, 2, 2)      // out 5x4
	n := NewNetwork(conv, NewReLU(), pool, NewDense(20, 3, rng))
	x := randMatrix(rng, 2, 12)
	y := OneHot([]int{0, 2}, 3)
	checkParamGrads(t, n, SoftmaxCrossEntropy{}, x, y, 1e-5)
	checkInputGrads(t, n, SoftmaxCrossEntropy{}, x, y, 1e-5)
}
