package nn

import (
	"math/rand"
	"sync"
	"testing"
)

func inferTestNet(rng *rand.Rand) *Network {
	return NewNetwork(
		NewDense(12, 16, rng),
		NewReLU(),
		NewDense(16, 8, rng),
		NewSigmoid(),
		NewDense(8, 3, rng),
	)
}

// TestPredictIntoMatchesTrainingForward pins the inference path —
// arena scratch, Dense+ReLU fusion and all — to the training forward
// pass bit for bit (the stack has no dropout or batch norm, so the two
// paths compute identical functions).
func TestPredictIntoMatchesTrainingForward(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := inferTestNet(rng)
	x := randMatrix(rng, 7, 12)
	want := n.Forward(x, true).Clone()

	got := n.PredictInto(nil, x)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("elem %d: PredictInto %v vs training forward %v", i, got.Data[i], want.Data[i])
		}
	}
	// Forward(x, false) and Predict route through the same path.
	if d := maxAbsDiff(n.Forward(x, false), got); d != 0 {
		t.Fatalf("Forward(x, false) diverges from PredictInto by %g", d)
	}
	// And a caller-provided dst receives the same values.
	dst := NewMatrix(7, 3)
	n.PredictInto(dst, x)
	if d := maxAbsDiff(dst, got); d != 0 {
		t.Fatalf("PredictInto(dst) diverges by %g", d)
	}
}

// TestPredictIntoConvStack covers the conv/pool infer path (shared-
// storage reshape headers, argmax-free pooling).
func TestPredictIntoConvStack(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	conv := NewConv1D(16, 1, 4, 3, 1, rng) // out 14x4
	pool := NewMaxPool1D(14, 4, 2, 2)      // out 7x4
	n := NewNetwork(conv, NewReLU(), pool, NewDense(28, 5, rng))
	x := randMatrix(rng, 3, 16)
	want := n.Forward(x, true).Clone()
	got := n.PredictInto(nil, x)
	if d := maxAbsDiff(got, want); d != 0 {
		t.Fatalf("conv stack inference diverges from training forward by %g", d)
	}
}

// TestPredictIntoBatchNormUsesRunningStats pins the batch-norm infer
// path to the running-statistics transform.
func TestPredictIntoBatchNormUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	bn := NewBatchNorm(4)
	n := NewNetwork(NewDense(6, 4, rng), bn, NewReLU())
	x := randMatrix(rng, 32, 6)
	for i := 0; i < 10; i++ {
		n.Forward(x, true)
	}
	got := n.PredictInto(nil, x)
	// Reference: standalone layer-by-layer eval forwards.
	h := n.Layers[0].Forward(x, false)
	h = n.Layers[1].Forward(h, false)
	h = n.Layers[2].Forward(h, false)
	if d := maxAbsDiff(got, h); d != 0 {
		t.Fatalf("batchnorm inference diverges by %g", d)
	}
}

// TestPredictIntoZeroAllocSteadyState is the satellite guard: once the
// arena and the caller's dst are warm, inference on a fitted network
// performs no allocation at all.
func TestPredictIntoZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(24))
	n := inferTestNet(rng)
	x := randMatrix(rng, 1, 12)
	dst := NewMatrix(1, 3)
	for i := 0; i < 3; i++ {
		n.PredictInto(dst, x) // warm the arena pool
	}
	if avg := testing.AllocsPerRun(100, func() { n.PredictInto(dst, x) }); avg != 0 {
		t.Fatalf("PredictInto allocates %v objects per call at steady state, want 0", avg)
	}
}

// TestConcurrentPredictSharedNetwork hammers one trained network from
// many goroutines; run with -race this pins the inference path's
// freedom from shared mutable state, and every result must be
// bit-identical to the serial reference.
func TestConcurrentPredictSharedNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	n := inferTestNet(rng)
	xs := make([]*Matrix, 8)
	refs := make([]*Matrix, 8)
	for i := range xs {
		xs[i] = randMatrix(rng, 2, 12)
		refs[i] = n.PredictInto(nil, xs[i])
	}
	var wg sync.WaitGroup
	errc := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := NewMatrix(2, 3)
			for iter := 0; iter < 50; iter++ {
				i := (g + iter) % len(xs)
				n.PredictInto(dst, xs[i])
				if d := maxAbsDiff(dst, refs[i]); d != 0 {
					select {
					case errc <- "concurrent predict diverged":
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
}

// TestPredictIntoBadShapePanics pins the dst shape contract.
func TestPredictIntoBadShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	n := inferTestNet(rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong dst shape")
		}
	}()
	n.PredictInto(NewMatrix(1, 2), randMatrix(rng, 1, 12))
}
