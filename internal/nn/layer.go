package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is one trainable tensor with its gradient accumulator and
// optimizer slots.
type Param struct {
	W *Matrix // weights
	G *Matrix // gradient, same shape as W
	// M and V are optimizer state (momentum / Adam moments), lazily
	// allocated by the optimizer.
	M, V *Matrix
}

func newParam(rows, cols int) *Param {
	return &Param{W: NewMatrix(rows, cols), G: NewMatrix(rows, cols)}
}

// Layer is one differentiable stage. Forward consumes a (batch x in)
// matrix; Backward consumes the gradient w.r.t. the forward output and
// returns the gradient w.r.t. the forward input, accumulating parameter
// gradients along the way. Backward must be called after the matching
// Forward (layers cache activations).
type Layer interface {
	Forward(x *Matrix, train bool) *Matrix
	Backward(grad *Matrix) *Matrix
	Params() []*Param
}

// --- Dense --------------------------------------------------------------

// Dense is a fully connected layer: y = xW + b.
type Dense struct {
	In, Out int
	Weight  *Param
	Bias    *Param

	lastX *Matrix
}

// NewDense creates a dense layer with He-initialized weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, Weight: newParam(in, out), Bias: newParam(1, out)}
	d.Weight.W.Randomize(rng, math.Sqrt(2.0/float64(in)))
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *Matrix, _ bool) *Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: Dense(%d->%d) got input with %d cols", d.In, d.Out, x.Cols))
	}
	d.lastX = x
	out := MatMul(x, d.Weight.W, false, false)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += d.Bias.W.Data[j]
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *Matrix) *Matrix {
	d.Weight.G.AddInPlace(MatMul(d.lastX, grad, true, false))
	d.Bias.G.AddInPlace(grad.ColSums())
	return MatMul(grad, d.Weight.W, false, true)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// --- ReLU ---------------------------------------------------------------

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *Matrix, _ bool) *Matrix {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *Matrix) *Matrix {
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// --- Sigmoid ------------------------------------------------------------

// Sigmoid is the logistic activation.
type Sigmoid struct {
	lastY *Matrix
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *Matrix, _ bool) *Matrix {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = 1.0 / (1.0 + math.Exp(-v))
	}
	s.lastY = out
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *Matrix) *Matrix {
	out := grad.Clone()
	for i := range out.Data {
		y := s.lastY.Data[i]
		out.Data[i] *= y * (1 - y)
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// --- Dropout ------------------------------------------------------------

// Dropout zeroes activations with probability P during training and
// rescales survivors by 1/(1-P) (inverted dropout); it is the identity
// at inference time.
type Dropout struct {
	P   float64
	rng *rand.Rand

	mask []float64
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0, 1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *Matrix, train bool) *Matrix {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	out := x.Clone()
	if cap(d.mask) < len(out.Data) {
		d.mask = make([]float64, len(out.Data))
	}
	d.mask = d.mask[:len(out.Data)]
	keep := 1.0 / (1.0 - d.P)
	for i := range out.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = 0
			out.Data[i] = 0
		} else {
			d.mask[i] = keep
			out.Data[i] *= keep
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *Matrix) *Matrix {
	if d.mask == nil {
		return grad
	}
	out := grad.Clone()
	for i := range out.Data {
		out.Data[i] *= d.mask[i]
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Interface checks.
var (
	_ Layer = (*Dense)(nil)
	_ Layer = (*ReLU)(nil)
	_ Layer = (*Sigmoid)(nil)
	_ Layer = (*Dropout)(nil)
)
