package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is one trainable tensor with its gradient accumulator and
// optimizer slots.
type Param struct {
	W *Matrix // weights
	G *Matrix // gradient, same shape as W
	// M and V are optimizer state (momentum / Adam moments), lazily
	// allocated by the optimizer.
	M, V *Matrix
}

func newParam(rows, cols int) *Param {
	return &Param{W: NewMatrix(rows, cols), G: NewMatrix(rows, cols)}
}

// Layer is one differentiable stage. Forward consumes a (batch x in)
// matrix; Backward consumes the gradient w.r.t. the forward output and
// returns the gradient w.r.t. the forward input, accumulating parameter
// gradients along the way. Backward must be called after the matching
// Forward(x, true) (layers cache activations during training).
//
// Training calls (Forward with train=true, and Backward) reuse
// persistent per-layer workspace buffers: the returned matrices are
// owned by the layer and overwritten by the next pass, and at most one
// goroutine may train a given layer at a time. Forward with
// train=false touches no shared layer state, so any number of
// goroutines may run inference on one trained model concurrently.
type Layer interface {
	Forward(x *Matrix, train bool) *Matrix
	Backward(grad *Matrix) *Matrix
	Params() []*Param
}

// inferLayer is the allocation-free inference path: infer writes the
// layer's output into scratch taken from ws (or returns x unchanged for
// identity layers) without mutating the layer. Network.PredictInto uses
// it for every built-in layer; external Layer implementations fall back
// to Forward(x, false).
type inferLayer interface {
	infer(x *Matrix, ws *Arena) *Matrix
}

// paramBackward is implemented by layers whose Backward spends a full
// GEMM (and for convolutions a scatter pass) producing the input
// gradient. Network.Backward calls backwardParams on its first layer
// instead, where that gradient has no consumer.
type paramBackward interface {
	backwardParams(grad *Matrix)
}

// --- Dense --------------------------------------------------------------

// Dense is a fully connected layer: y = xW + b.
type Dense struct {
	In, Out int
	Weight  *Param
	Bias    *Param

	lastX *Matrix // borrowed input of the last training forward
	out   *Matrix // training forward output workspace
	dx    *Matrix // training backward input-gradient workspace
}

// NewDense creates a dense layer with He-initialized weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, Weight: newParam(in, out), Bias: newParam(1, out)}
	d.Weight.W.Randomize(rng, math.Sqrt(2.0/float64(in)))
	return d
}

func (d *Dense) checkIn(x *Matrix) {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: Dense(%d->%d) got input with %d cols", d.In, d.Out, x.Cols))
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *Matrix, train bool) *Matrix {
	d.checkIn(x)
	if !train {
		//lint:ignore hotalloc standalone layer eval must not share workspace across goroutines; Network inference pools arenas via PredictInto
		return d.inferInto(NewMatrix(x.Rows, d.Out), x, false, false)
	}
	d.lastX = x
	out := ensure(&d.out, x.Rows, d.Out)
	gemm(out, x, d.Weight.W, false, false, false, d.Bias.W.Data, false, false)
	return out
}

// inferInto writes x@W + b into dst — with the ReLU fused into the
// product's epilogue when relu is set, and the relaxed-precision
// kernels when fast is set — touching no layer state.
func (d *Dense) inferInto(dst, x *Matrix, relu, fast bool) *Matrix {
	gemm(dst, x, d.Weight.W, false, false, false, d.Bias.W.Data, relu, fast)
	return dst
}

func (d *Dense) infer(x *Matrix, ws *Arena) *Matrix {
	d.checkIn(x)
	return d.inferInto(ws.take(x.Rows, d.Out), x, false, ws.fast)
}

// backwardParams accumulates the weight and bias gradients only,
// skipping the input-gradient GEMM — used when this is the network's
// first layer and the input gradient has no consumer.
func (d *Dense) backwardParams(grad *Matrix) {
	MatMulAddInto(d.Weight.G, d.lastX, grad, true, false)
	grad.addColSumsInto(d.Bias.G.Data)
}

// Backward implements Layer.
func (d *Dense) Backward(grad *Matrix) *Matrix {
	d.backwardParams(grad)
	dx := ensure(&d.dx, grad.Rows, d.In)
	return MatMulInto(dx, grad, d.Weight.W, false, true)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// --- ReLU ---------------------------------------------------------------

// ReLU is the rectified linear activation.
type ReLU struct {
	out *Matrix // training output; its sign doubles as the backward mask
	dx  *Matrix
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

func reluInto(dst, x *Matrix) *Matrix {
	for i, v := range x.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
	return dst
}

// Forward implements Layer.
func (r *ReLU) Forward(x *Matrix, train bool) *Matrix {
	if !train {
		//lint:ignore hotalloc standalone layer eval must not share workspace across goroutines; Network inference pools arenas via PredictInto
		return reluInto(NewMatrix(x.Rows, x.Cols), x)
	}
	return reluInto(ensure(&r.out, x.Rows, x.Cols), x)
}

func (r *ReLU) infer(x *Matrix, ws *Arena) *Matrix {
	return reluInto(ws.take(x.Rows, x.Cols), x)
}

// Backward implements Layer. The cached output's sign is the mask:
// out > 0 exactly when the input was > 0.
func (r *ReLU) Backward(grad *Matrix) *Matrix {
	dx := ensure(&r.dx, grad.Rows, grad.Cols)
	for i, v := range grad.Data {
		if r.out.Data[i] > 0 {
			dx.Data[i] = v
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// --- Sigmoid ------------------------------------------------------------

// Sigmoid is the logistic activation.
type Sigmoid struct {
	out *Matrix // training output, reused by Backward
	dx  *Matrix
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

func sigmoidInto(dst, x *Matrix) *Matrix {
	for i, v := range x.Data {
		dst.Data[i] = 1.0 / (1.0 + math.Exp(-v))
	}
	return dst
}

// Forward implements Layer.
func (s *Sigmoid) Forward(x *Matrix, train bool) *Matrix {
	if !train {
		//lint:ignore hotalloc standalone layer eval must not share workspace across goroutines; Network inference pools arenas via PredictInto
		return sigmoidInto(NewMatrix(x.Rows, x.Cols), x)
	}
	return sigmoidInto(ensure(&s.out, x.Rows, x.Cols), x)
}

func (s *Sigmoid) infer(x *Matrix, ws *Arena) *Matrix {
	return sigmoidInto(ws.take(x.Rows, x.Cols), x)
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *Matrix) *Matrix {
	dx := ensure(&s.dx, grad.Rows, grad.Cols)
	for i, v := range grad.Data {
		y := s.out.Data[i]
		dx.Data[i] = v * y * (1 - y)
	}
	return dx
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// --- Dropout ------------------------------------------------------------

// Dropout zeroes activations with probability P during training and
// rescales survivors by 1/(1-P) (inverted dropout); it is the identity
// at inference time.
type Dropout struct {
	P   float64
	rng *rand.Rand

	mask []float64
	out  *Matrix
	dx   *Matrix
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0, 1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *Matrix, train bool) *Matrix {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	out := ensure(&d.out, x.Rows, x.Cols)
	mask := ensureF64(&d.mask, len(x.Data))
	keep := 1.0 / (1.0 - d.P)
	for i, v := range x.Data {
		if d.rng.Float64() < d.P {
			mask[i] = 0
			out.Data[i] = 0
		} else {
			mask[i] = keep
			out.Data[i] = v * keep
		}
	}
	return out
}

func (d *Dropout) infer(x *Matrix, _ *Arena) *Matrix { return x }

// Backward implements Layer.
func (d *Dropout) Backward(grad *Matrix) *Matrix {
	if d.mask == nil {
		return grad
	}
	dx := ensure(&d.dx, grad.Rows, grad.Cols)
	for i, v := range grad.Data {
		dx.Data[i] = v * d.mask[i]
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Interface checks.
var (
	_ Layer      = (*Dense)(nil)
	_ Layer      = (*ReLU)(nil)
	_ Layer      = (*Sigmoid)(nil)
	_ Layer      = (*Dropout)(nil)
	_ inferLayer = (*Dense)(nil)
	_ inferLayer = (*ReLU)(nil)
	_ inferLayer = (*Sigmoid)(nil)
	_ inferLayer = (*Dropout)(nil)

	_ paramBackward = (*Dense)(nil)
	_ paramBackward = (*Conv1D)(nil)
	_ paramBackward = (*Conv2D)(nil)
)
