package nn

import (
	"fmt"
	"math"
)

// Loss computes a scalar objective and the gradient of that objective
// with respect to the network output.
type Loss interface {
	// Compute returns the mean loss over the batch and dL/dpred.
	Compute(pred, target *Matrix) (float64, *Matrix)
}

// lossInto is the allocation-free form of Loss: the gradient is
// written into a caller-provided matrix of pred's shape. The Trainer
// uses it to reuse one gradient buffer across every minibatch.
type lossInto interface {
	ComputeInto(pred, target, grad *Matrix) float64
}

// MSE is mean squared error, the autoencoder's reconstruction
// objective.
type MSE struct{}

// Compute implements Loss.
func (l MSE) Compute(pred, target *Matrix) (float64, *Matrix) {
	grad := NewMatrix(pred.Rows, pred.Cols)
	return l.ComputeInto(pred, target, grad), grad
}

// ComputeInto computes the mean loss, writing dL/dpred into grad.
func (MSE) ComputeInto(pred, target, grad *Matrix) float64 {
	pred.sameShape(target, "MSE")
	pred.sameShape(grad, "MSE grad")
	var sum float64
	n := float64(len(pred.Data))
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		sum += d * d
		grad.Data[i] = 2 * d / n
	}
	return sum / n
}

// SoftmaxCrossEntropy applies a softmax to the network's logits and
// computes the cross entropy against one-hot targets. The combined
// gradient (softmax - target) / batch is numerically stable.
type SoftmaxCrossEntropy struct{}

// Compute implements Loss.
func (l SoftmaxCrossEntropy) Compute(logits, target *Matrix) (float64, *Matrix) {
	grad := NewMatrix(logits.Rows, logits.Cols)
	return l.ComputeInto(logits, target, grad), grad
}

// ComputeInto computes the mean loss, writing dL/dlogits into grad.
// Each grad row holds the softmax probabilities transiently before
// being overwritten with (p - target) / batch, so no intermediate
// probability matrix is allocated.
func (SoftmaxCrossEntropy) ComputeInto(logits, target, grad *Matrix) float64 {
	logits.sameShape(target, "SoftmaxCrossEntropy")
	logits.sameShape(grad, "SoftmaxCrossEntropy grad")
	var loss float64
	batch := float64(logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		g := grad.Row(i)
		softmaxRowInto(g, logits.Row(i))
		tgt := target.Row(i)
		for j, p := range g {
			g[j] = (p - tgt[j]) / batch
			if tgt[j] > 0 {
				loss -= tgt[j] * math.Log(math.Max(p, 1e-12))
			}
		}
	}
	return loss / batch
}

// softmaxRowInto writes the softmax of row into dst (same length).
func softmaxRowInto(dst, row []float64) {
	maxV := math.Inf(-1)
	for _, v := range row {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for j, v := range row {
		dst[j] = math.Exp(v - maxV)
		sum += dst[j]
	}
	for j := range dst {
		dst[j] /= sum
	}
}

// Softmax returns the row-wise softmax of logits.
func Softmax(logits *Matrix) *Matrix {
	out := NewMatrix(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		softmaxRowInto(out.Row(i), logits.Row(i))
	}
	return out
}

// SoftmaxInPlace replaces each row of m with its softmax, for
// allocation-free probability readout over a reusable logits buffer.
// (softmaxRowInto tolerates dst == row: the max is read up front and
// element j of the source is consumed before element j of the
// destination is written.)
func SoftmaxInPlace(m *Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		softmaxRowInto(row, row)
	}
}

// softmaxRowIntoFast is the fast-mode softmax row kernel: instead of
// dividing every exponential by the sum it multiplies by the sum's
// reciprocal, trading one division per element for one per row at the
// cost of up to 1 ulp of extra rounding per element. Like
// softmaxRowInto it tolerates dst == row.
func softmaxRowIntoFast(dst, row []float64) {
	maxV := math.Inf(-1)
	for _, v := range row {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for j, v := range row {
		dst[j] = math.Exp(v - maxV)
		sum += dst[j]
	}
	inv := 1 / sum
	for j := range dst {
		dst[j] *= inv
	}
}

// SoftmaxInPlaceFast is SoftmaxInPlace with the fast-mode row kernel
// (reciprocal multiply instead of per-element division). Results are
// within 1 ulp per probability of SoftmaxInPlace — fine for soft-vote
// tallies, never for training losses; the fastmath analyzer enforces
// that it is only reached behind an explicit fast-mode opt-in.
func SoftmaxInPlaceFast(m *Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		softmaxRowIntoFast(row, row)
	}
}

// OneHot encodes integer labels as a rows x classes one-hot matrix.
func OneHot(labels []int, classes int) *Matrix {
	out := NewMatrix(len(labels), classes)
	for i, l := range labels {
		if l < 0 || l >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0, %d)", l, classes))
		}
		out.Set(i, l, 1)
	}
	return out
}

// Argmax returns the index of the largest value in each row.
func Argmax(m *Matrix) []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// RMSE returns the per-row root mean squared error between two
// matrices — the autoencoder detector's reconstruction error.
func RMSE(pred, target *Matrix) []float64 {
	return RMSEInto(make([]float64, pred.Rows), pred, target)
}

// RMSEInto is RMSE written into a caller-provided slice of length
// pred.Rows, for allocation-free scoring loops.
func RMSEInto(dst []float64, pred, target *Matrix) []float64 {
	pred.sameShape(target, "RMSE")
	if len(dst) != pred.Rows {
		panic(fmt.Sprintf("nn: RMSEInto dst has len %d, want %d", len(dst), pred.Rows))
	}
	for i := 0; i < pred.Rows; i++ {
		p, t := pred.Row(i), target.Row(i)
		var sum float64
		for j := range p {
			d := p[j] - t[j]
			sum += d * d
		}
		dst[i] = math.Sqrt(sum / float64(pred.Cols))
	}
	return dst
}
