// Package nn is a small, dependency-free neural-network library built
// for this reproduction: Go has no production deep-learning stack, and
// the repository is stdlib-only, so the substrate the paper takes from
// Keras/TensorFlow — dense and 1-D convolutional layers, dropout, max
// pooling, MSE and softmax cross-entropy losses, SGD and Adam — is
// implemented here from scratch on row-major float64 matrices with
// goroutine-parallel matrix multiplication.
//
// Shape mismatches are programming errors and panic with descriptive
// messages, mirroring how slice indexing fails; all data-dependent
// failures return errors.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nn: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have equal
// length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("nn: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Zero resets every element.
func (m *Matrix) Zero() { m.Fill(0) }

// Randomize fills the matrix from a scaled normal distribution —
// He initialization when scale = sqrt(2/fanIn).
func (m *Matrix) Randomize(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * scale
	}
}

// AddInPlace adds other element-wise.
func (m *Matrix) AddInPlace(other *Matrix) {
	m.sameShape(other, "AddInPlace")
	for i := range m.Data {
		m.Data[i] += other.Data[i]
	}
}

// Scale multiplies every element by v.
func (m *Matrix) Scale(v float64) {
	for i := range m.Data {
		m.Data[i] *= v
	}
}

// MaxAbs returns the largest absolute element, 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var v float64
	for _, x := range m.Data {
		if a := math.Abs(x); a > v {
			v = a
		}
	}
	return v
}

func (m *Matrix) sameShape(other *Matrix, op string) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("nn: %s shape mismatch: %dx%d vs %dx%d",
			op, m.Rows, m.Cols, other.Rows, other.Cols))
	}
}

// parallelThreshold is the number of multiply-adds below which MatMul
// stays single-threaded.
const parallelThreshold = 1 << 16

// ColSums returns a 1 x Cols matrix of column sums.
func (m *Matrix) ColSums() *Matrix {
	out := NewMatrix(1, m.Cols)
	m.addColSumsInto(out.Data)
	return out
}

// addColSumsInto accumulates the matrix's column sums onto dst (len
// Cols) — the allocation-free form used by the bias-gradient path.
func (m *Matrix) addColSumsInto(dst []float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
}
