package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveMatMul(a, b *Matrix, aT, bT bool) *Matrix {
	ar, ac := a.Rows, a.Cols
	if aT {
		ar, ac = ac, ar
	}
	_, bc := b.Rows, b.Cols
	if bT {
		bc = b.Rows
	}
	out := NewMatrix(ar, bc)
	at := func(m *Matrix, i, j int, t bool) float64 {
		if t {
			return m.At(j, i)
		}
		return m.At(i, j)
	}
	for i := 0; i < ar; i++ {
		for j := 0; j < bc; j++ {
			var s float64
			for k := 0; k < ac; k++ {
				s += at(a, i, k, aT) * at(b, k, j, bT)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func matricesClose(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := MatMul(a, b, false, false)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !matricesClose(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 4, 3)
	b := randMatrix(rng, 4, 5)
	// a^T (3x4) @ b (4x5) = 3x5.
	got := MatMul(a, b, true, false)
	want := naiveMatMul(a, b, true, false)
	if !matricesClose(got, want, 1e-10) {
		t.Fatal("aT MatMul mismatch")
	}
	c := randMatrix(rng, 5, 3)
	// a (4x3) @ c^T (3x5) = 4x5.
	got = MatMul(a, c, false, true)
	want = naiveMatMul(a, c, false, true)
	if !matricesClose(got, want, 1e-10) {
		t.Fatal("bT MatMul mismatch")
	}
}

func TestMatMulParallelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 70, 90) // above parallel threshold
	b := randMatrix(rng, 90, 40)
	got := MatMul(a, b, false, false)
	want := naiveMatMul(a, b, false, false)
	if !matricesClose(got, want, 1e-9) {
		t.Fatal("parallel MatMul mismatch")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner dim mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3), false, false)
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestPropertyMatMulMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		return matricesClose(MatMul(a, b, false, false), naiveMatMul(a, b, false, false), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.ColSums()
	want := FromRows([][]float64{{9, 12}})
	if !matricesClose(got, want, 1e-12) {
		t.Fatalf("ColSums = %v", got.Data)
	}
}

func TestCloneAndHelpers(t *testing.T) {
	m := FromRows([][]float64{{1, -2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases data")
	}
	if m.MaxAbs() != 2 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	m.Scale(2)
	if m.At(0, 1) != -4 {
		t.Fatalf("Scale wrong: %v", m.Data)
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero failed")
	}
	row := m.Row(0)
	row[0] = 7
	if m.At(0, 0) != 7 {
		t.Fatal("Row should be a view")
	}
}

func TestRandomizeScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMatrix(100, 100)
	m.Randomize(rng, 0.1)
	var sum, sq float64
	for _, v := range m.Data {
		sum += v
		sq += v * v
	}
	n := float64(len(m.Data))
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean) > 0.01 || math.Abs(std-0.1) > 0.01 {
		t.Fatalf("Randomize stats: mean=%v std=%v", mean, std)
	}
}
