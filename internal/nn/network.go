package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Network is an ordered stack of layers.
type Network struct {
	Layers []Layer
}

// NewNetwork builds a network from layers.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// Forward runs the stack; train enables dropout and other
// training-only behaviour.
func (n *Network) Forward(x *Matrix, train bool) *Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the output gradient through the stack,
// accumulating parameter gradients.
func (n *Network) Backward(grad *Matrix) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// Params returns every trainable parameter in the stack.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W.Data)
	}
	return total
}

// TrainConfig controls Trainer.Fit.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	// Seed shuffles batches deterministically.
	Seed int64
	// OnEpoch, when non-nil, observes every epoch's mean loss (for
	// logging or early stopping via returned false).
	OnEpoch func(epoch int, loss float64) bool
	// ValFraction, when positive, holds out that share of the training
	// rows as a validation set and enables early stopping: training
	// halts after Patience epochs without validation improvement, and
	// the best-validation weights are restored.
	ValFraction float64
	// Patience is the early-stopping tolerance in epochs (default 10
	// when ValFraction > 0).
	Patience int
}

// Trainer couples a network with an objective and an optimizer.
type Trainer struct {
	Net  *Network
	Loss Loss
	Opt  Optimizer
}

// Fit trains on (X, Y) and returns the mean loss per epoch.
func (t *Trainer) Fit(x, y *Matrix, cfg TrainConfig) ([]float64, error) {
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("nn: X has %d rows, Y has %d", x.Rows, y.Rows)
	}
	if x.Rows == 0 {
		return nil, fmt.Errorf("nn: empty training set")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 || cfg.BatchSize > x.Rows {
		cfg.BatchSize = x.Rows
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}

	// Optional validation split for early stopping.
	var valX, valY *Matrix
	if cfg.ValFraction > 0 && cfg.ValFraction < 1 {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nVal := int(float64(len(idx)) * cfg.ValFraction)
		if nVal >= 1 && nVal < len(idx) {
			valX = gatherRows(x, idx[:nVal])
			valY = gatherRows(y, idx[:nVal])
			idx = idx[nVal:]
		}
	}
	if cfg.Patience <= 0 {
		cfg.Patience = 10
	}
	if cfg.BatchSize > len(idx) {
		cfg.BatchSize = len(idx)
	}

	losses := make([]float64, 0, cfg.Epochs)
	params := t.Net.Params()
	bestVal := math.Inf(1)
	var bestWeights []float64
	sinceBest := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			bx := gatherRows(x, idx[start:end])
			by := gatherRows(y, idx[start:end])
			pred := t.Net.Forward(bx, true)
			loss, grad := t.Loss.Compute(pred, by)
			t.Net.Backward(grad)
			t.Opt.Step(params)
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		losses = append(losses, epochLoss)
		if cfg.OnEpoch != nil && !cfg.OnEpoch(epoch, epochLoss) {
			break
		}
		if valX != nil {
			valLoss, _ := t.Loss.Compute(t.Net.Predict(valX), valY)
			if valLoss < bestVal {
				bestVal = valLoss
				bestWeights = t.Net.SaveWeights()
				sinceBest = 0
			} else if sinceBest++; sinceBest >= cfg.Patience {
				break
			}
		}
	}
	if bestWeights != nil {
		if err := t.Net.LoadWeights(bestWeights); err != nil {
			return nil, fmt.Errorf("nn: restore best weights: %w", err)
		}
	}
	return losses, nil
}

// Predict runs inference (dropout disabled).
func (n *Network) Predict(x *Matrix) *Matrix { return n.Forward(x, false) }

func gatherRows(m *Matrix, idx []int) *Matrix {
	out := NewMatrix(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// SaveWeights flattens every parameter into one slice (for
// persistence); LoadWeights restores them into an identically shaped
// network.
func (n *Network) SaveWeights() []float64 {
	var out []float64
	for _, p := range n.Params() {
		out = append(out, p.W.Data...)
	}
	return out
}

// LoadWeights restores weights produced by SaveWeights. It fails if the
// total parameter count differs.
func (n *Network) LoadWeights(w []float64) error {
	if len(w) != n.NumParams() {
		return fmt.Errorf("nn: weight count %d does not match network's %d", len(w), n.NumParams())
	}
	off := 0
	for _, p := range n.Params() {
		copy(p.W.Data, w[off:off+len(p.W.Data)])
		off += len(p.W.Data)
	}
	return nil
}
