package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"soteria/internal/obs"
)

// Network is an ordered stack of layers.
type Network struct {
	Layers []Layer

	// fastInfer opts the INFERENCE path into the relaxed-precision
	// kernels (FMA accumulation, fused softmax callers, relaxed zero
	// skipping). It is deliberately not a persisted field and is never
	// consulted by Forward(x, true), Backward, or Fit: training and
	// saved models always use the bit-exact kernels (enforced by the
	// fastmath analyzer). Toggle it before serving, not concurrently
	// with in-flight Predict calls.
	fastInfer bool

	// arenas recycles inference scratch across Predict calls; each
	// concurrent caller borrows its own Arena, so inference on a shared
	// trained network is race-free and allocation-free at steady state.
	arenas sync.Pool
}

// NewNetwork builds a network from layers.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// SetFastInference opts this network's inference passes in or out of
// the relaxed-precision fast mode. Fast mode trades bit-exactness for
// speed: results stay within the documented tolerance of the default
// kernels (see DESIGN.md §7) but are not byte-identical, so it is OFF
// by default and must never feed training or persisted artifacts.
// Set it once before serving; it must not be toggled concurrently with
// in-flight inference calls.
func (n *Network) SetFastInference(on bool) { n.fastInfer = on }

// FastInference reports whether relaxed-precision inference is enabled.
func (n *Network) FastInference() bool { return n.fastInfer }

// Forward runs the stack; train enables dropout and other
// training-only behaviour. Training passes reuse per-layer workspace
// buffers and must come from a single goroutine; inference passes
// (train=false) touch no layer state and may run concurrently.
func (n *Network) Forward(x *Matrix, train bool) *Matrix {
	if !train {
		return n.PredictInto(nil, x)
	}
	return n.forwardTrain(x)
}

// forwardTrain is the training-only forward pass: dropout enabled,
// layer workspaces reused, never the relaxed-precision kernels. Fit
// calls this directly (not Forward) so the training path has no static
// route to the fast-mode machinery — the fastmath analyzer proves the
// separation over the whole call graph.
func (n *Network) forwardTrain(x *Matrix) *Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x, true)
	}
	return x
}

// inferArena runs the stack's inference path on scratch from ws. A
// Dense or Conv1D layer immediately followed by a ReLU is fused into
// one pass (the GEMM epilogue clamps the output while it is
// cache-hot), which is exact: ReLU(x) = max(x, 0) involves no
// arithmetic.
func (n *Network) inferArena(x *Matrix, ws *Arena) *Matrix {
	for i := 0; i < len(n.Layers); i++ {
		followedByReLU := false
		if i+1 < len(n.Layers) {
			_, followedByReLU = n.Layers[i+1].(*ReLU)
		}
		switch l := n.Layers[i].(type) {
		case *Dense:
			if followedByReLU {
				l.checkIn(x)
				x = l.inferInto(ws.take(x.Rows, l.Out), x, true, ws.fast)
				i++
				continue
			}
		case *Conv1D:
			if followedByReLU {
				x = l.inferFused(x, ws, true)
				i++
				continue
			}
		}
		if il, ok := n.Layers[i].(inferLayer); ok {
			x = il.infer(x, ws)
		} else {
			x = n.Layers[i].Forward(x, false)
		}
	}
	return x
}

// PredictInto runs inference and copies the output into dst, which
// must have the output's shape (or be nil, in which case a fresh
// matrix is allocated). With a caller-reused dst, a steady-state call
// performs no allocation. Safe for concurrent use on a shared trained
// network.
func (n *Network) PredictInto(dst, x *Matrix) *Matrix {
	ws := n.acquireArena()
	ws.fast = n.fastInfer
	y := n.inferArena(x, ws)
	dst = copyOut(dst, y)
	ws.reset()
	n.arenas.Put(ws)
	return dst
}

// PredictExact runs inference on the bit-exact kernels unconditionally,
// ignoring the fast-inference flag. Training, validation, and
// calibration go through here: metrics that pick the best epoch or set
// a detection threshold must never be computed with relaxed precision,
// even on a network someone already toggled into fast mode. Safe for
// concurrent use on a shared trained network.
func (n *Network) PredictExact(x *Matrix) *Matrix {
	ws := n.acquireArena()
	ws.fast = false
	y := n.inferArena(x, ws)
	out := copyOut(nil, y)
	ws.reset()
	n.arenas.Put(ws)
	return out
}

// acquireArena checks an inference workspace out of the pool.
func (n *Network) acquireArena() *Arena {
	ws, _ := n.arenas.Get().(*Arena)
	if ws == nil {
		ws = new(Arena)
	}
	return ws
}

// copyOut copies y into dst, allocating when dst is nil and rejecting
// shape mismatches.
func copyOut(dst, y *Matrix) *Matrix {
	if dst == nil {
		dst = NewMatrix(y.Rows, y.Cols)
	} else if dst.Rows != y.Rows || dst.Cols != y.Cols {
		panic(fmt.Sprintf("nn: PredictInto dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, y.Rows, y.Cols))
	}
	copy(dst.Data, y.Data)
	return dst
}

// PredictApply runs inference on x and hands the raw output — arena
// scratch owned by the network — to visit, skipping PredictInto's
// copy-out for callers that only reduce or transform the result. The
// matrix passed to visit is valid only until visit returns; visit may
// modify it in place (e.g. a softmax over logits). Safe for concurrent
// use on a shared trained network.
func (n *Network) PredictApply(x *Matrix, visit func(y *Matrix)) {
	ws := n.acquireArena()
	ws.fast = n.fastInfer
	visit(n.inferArena(x, ws))
	ws.reset()
	n.arenas.Put(ws)
}

// Backward propagates the output gradient through the stack,
// accumulating parameter gradients. The first layer's input gradient
// has no consumer, so layers that can skip producing it (paramBackward)
// do.
func (n *Network) Backward(grad *Matrix) {
	for i := len(n.Layers) - 1; i > 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	if len(n.Layers) == 0 {
		return
	}
	if pb, ok := n.Layers[0].(paramBackward); ok {
		pb.backwardParams(grad)
		return
	}
	n.Layers[0].Backward(grad)
}

// Params returns every trainable parameter in the stack.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W.Data)
	}
	return total
}

// TrainConfig controls Trainer.Fit.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	// Seed shuffles batches deterministically.
	Seed int64
	// OnEpoch, when non-nil, observes every epoch's mean loss (for
	// logging or early stopping via returned false).
	OnEpoch func(epoch int, loss float64) bool
	// ValFraction, when positive, holds out that share of the training
	// rows as a validation set and enables early stopping: training
	// halts after Patience epochs without validation improvement, and
	// the best-validation weights are restored.
	ValFraction float64
	// Patience is the early-stopping tolerance in epochs (default 10
	// when ValFraction > 0).
	Patience int
	// Hooks observes each epoch's mean loss and wall time (nil = off).
	// Observations are write-only — they never feed back into training,
	// so fitted weights are bit-identical with hooks on or off. Epoch
	// timing is observed at epoch granularity only; per-batch and
	// per-layer code stays clock-free (see the obshot analyzer).
	Hooks *obs.TrainHooks
}

// Trainer couples a network with an objective and an optimizer.
type Trainer struct {
	Net  *Network
	Loss Loss
	Opt  Optimizer

	// Minibatch gather and loss-gradient buffers, reused across
	// batches so a steady-state epoch allocates nothing.
	bx, by *Matrix
	grad   *Matrix
}

// computeLoss evaluates the objective, reusing the trainer's gradient
// buffer when the loss supports the allocation-free path.
func (t *Trainer) computeLoss(pred, target *Matrix) (float64, *Matrix) {
	if li, ok := t.Loss.(lossInto); ok {
		grad := ensure(&t.grad, pred.Rows, pred.Cols)
		return li.ComputeInto(pred, target, grad), grad
	}
	return t.Loss.Compute(pred, target)
}

// Fit trains on (X, Y) and returns the mean loss per epoch.
func (t *Trainer) Fit(x, y *Matrix, cfg TrainConfig) ([]float64, error) {
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("nn: X has %d rows, Y has %d", x.Rows, y.Rows)
	}
	if x.Rows == 0 {
		return nil, fmt.Errorf("nn: empty training set")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 || cfg.BatchSize > x.Rows {
		cfg.BatchSize = x.Rows
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}

	// Optional validation split for early stopping.
	var valX, valY *Matrix
	if cfg.ValFraction > 0 && cfg.ValFraction < 1 {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nVal := int(float64(len(idx)) * cfg.ValFraction)
		if nVal >= 1 && nVal < len(idx) {
			valX = gatherRows(x, idx[:nVal])
			valY = gatherRows(y, idx[:nVal])
			idx = idx[nVal:]
		}
	}
	if cfg.Patience <= 0 {
		cfg.Patience = 10
	}
	if cfg.BatchSize > len(idx) {
		cfg.BatchSize = len(idx)
	}

	losses := make([]float64, 0, cfg.Epochs)
	params := t.Net.Params()
	bestVal := math.Inf(1)
	var bestWeights []float64
	sinceBest := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochStart := cfg.Hooks.StartEpoch()
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			bx := gatherRowsInto(&t.bx, x, idx[start:end])
			by := gatherRowsInto(&t.by, y, idx[start:end])
			pred := t.Net.forwardTrain(bx)
			loss, grad := t.computeLoss(pred, by)
			t.Net.Backward(grad)
			t.Opt.Step(params)
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		losses = append(losses, epochLoss)
		cfg.Hooks.EndEpoch(epochStart, epochLoss)
		if cfg.OnEpoch != nil && !cfg.OnEpoch(epoch, epochLoss) {
			break
		}
		if valX != nil {
			valLoss, _ := t.computeLoss(t.Net.PredictExact(valX), valY)
			if valLoss < bestVal {
				bestVal = valLoss
				bestWeights = t.Net.SaveWeights()
				sinceBest = 0
			} else if sinceBest++; sinceBest >= cfg.Patience {
				break
			}
		}
	}
	if bestWeights != nil {
		if err := t.Net.LoadWeights(bestWeights); err != nil {
			return nil, fmt.Errorf("nn: restore best weights: %w", err)
		}
	}
	return losses, nil
}

// Predict runs inference (dropout disabled).
func (n *Network) Predict(x *Matrix) *Matrix { return n.Forward(x, false) }

func gatherRows(m *Matrix, idx []int) *Matrix {
	out := NewMatrix(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// gatherRowsInto is gatherRows onto a reusable buffer.
func gatherRowsInto(dst **Matrix, m *Matrix, idx []int) *Matrix {
	out := ensure(dst, len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// SaveWeights flattens every parameter into one slice (for
// persistence); LoadWeights restores them into an identically shaped
// network.
func (n *Network) SaveWeights() []float64 {
	var out []float64
	for _, p := range n.Params() {
		out = append(out, p.W.Data...)
	}
	return out
}

// LoadWeights restores weights produced by SaveWeights. It fails if the
// total parameter count differs.
func (n *Network) LoadWeights(w []float64) error {
	if len(w) != n.NumParams() {
		return fmt.Errorf("nn: weight count %d does not match network's %d", len(w), n.NumParams())
	}
	off := 0
	for _, p := range n.Params() {
		copy(p.W.Data, w[off:off+len(p.W.Data)])
		off += len(p.W.Data)
	}
	return nil
}
