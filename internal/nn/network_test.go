package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrainXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(
		NewDense(2, 8, rng),
		NewReLU(),
		NewDense(8, 2, rng),
	)
	x := FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := OneHot([]int{0, 1, 1, 0}, 2)
	tr := Trainer{Net: net, Loss: SoftmaxCrossEntropy{}, Opt: NewAdam(0.05)}
	losses, err := tr.Fit(x, y, TrainConfig{Epochs: 300, BatchSize: 4, Seed: 1})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if losses[len(losses)-1] > 0.05 {
		t.Fatalf("XOR final loss = %v, want < 0.05", losses[len(losses)-1])
	}
	pred := Argmax(net.Predict(x))
	want := []int{0, 1, 1, 0}
	for i := range want {
		if pred[i] != want[i] {
			t.Fatalf("XOR pred = %v, want %v", pred, want)
		}
	}
}

func TestTrainAutoencoderReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(
		NewDense(8, 16, rng),
		NewReLU(),
		NewDense(16, 8, rng),
	)
	// Structured inputs: two cluster prototypes with noise.
	x := NewMatrix(40, 8)
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < 8; j++ {
			base := 0.1
			if (i%2 == 0) == (j < 4) {
				base = 0.9
			}
			x.Set(i, j, base+0.05*rng.NormFloat64())
		}
	}
	tr := Trainer{Net: net, Loss: MSE{}, Opt: NewAdam(0.01)}
	losses, err := tr.Fit(x, x, TrainConfig{Epochs: 200, BatchSize: 8, Seed: 2})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if final := losses[len(losses)-1]; final > 0.01 {
		t.Fatalf("AE final loss = %v, want < 0.01", final)
	}
	re := RMSE(net.Predict(x), x)
	for i, v := range re {
		if v > 0.2 {
			t.Fatalf("row %d RMSE = %v", i, v)
		}
	}
}

func TestTrainerErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := Trainer{Net: NewNetwork(NewDense(2, 2, rng)), Loss: MSE{}, Opt: &SGD{LR: 0.1}}
	if _, err := tr.Fit(NewMatrix(3, 2), NewMatrix(4, 2), TrainConfig{}); err == nil {
		t.Fatal("row mismatch should error")
	}
	if _, err := tr.Fit(NewMatrix(0, 2), NewMatrix(0, 2), TrainConfig{}); err == nil {
		t.Fatal("empty training set should error")
	}
}

func TestTrainerEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := Trainer{Net: NewNetwork(NewDense(2, 2, rng)), Loss: MSE{}, Opt: &SGD{LR: 0.01}}
	calls := 0
	losses, err := tr.Fit(randMatrix(rng, 10, 2), randMatrix(rng, 10, 2), TrainConfig{
		Epochs: 50, BatchSize: 5,
		OnEpoch: func(epoch int, loss float64) bool {
			calls++
			return epoch < 2 // stop after 3 epochs
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 3 || calls != 3 {
		t.Fatalf("early stop: %d losses, %d calls", len(losses), calls)
	}
}

func TestTrainingDeterministicPerSeed(t *testing.T) {
	build := func() (*Network, *Trainer) {
		rng := rand.New(rand.NewSource(5))
		net := NewNetwork(NewDense(3, 5, rng), NewReLU(), NewDense(5, 2, rng))
		return net, &Trainer{Net: net, Loss: SoftmaxCrossEntropy{}, Opt: NewAdam(0.01)}
	}
	rng := rand.New(rand.NewSource(6))
	x := randMatrix(rng, 20, 3)
	y := OneHot(make([]int, 20), 2)
	n1, t1 := build()
	n2, t2 := build()
	if _, err := t1.Fit(x, y, TrainConfig{Epochs: 5, BatchSize: 4, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Fit(x, y, TrainConfig{Epochs: 5, BatchSize: 4, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	w1, w2 := n1.SaveWeights(), n2.SaveWeights()
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("training not deterministic for fixed seeds")
		}
	}
}

func TestSaveLoadWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n1 := NewNetwork(NewDense(4, 3, rng), NewReLU(), NewDense(3, 2, rng))
	n2 := NewNetwork(NewDense(4, 3, rng), NewReLU(), NewDense(3, 2, rng))
	if err := n2.LoadWeights(n1.SaveWeights()); err != nil {
		t.Fatalf("LoadWeights: %v", err)
	}
	x := randMatrix(rng, 3, 4)
	a, b := n1.Predict(x), n2.Predict(x)
	if !matricesClose(a, b, 0) {
		t.Fatal("loaded network predicts differently")
	}
	if err := n2.LoadWeights([]float64{1, 2}); err == nil {
		t.Fatal("wrong weight count should error")
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := NewNetwork(NewDense(10, 5, rng)) // 50 weights + 5 bias
	if got := n.NumParams(); got != 55 {
		t.Fatalf("NumParams = %d, want 55", got)
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := NewDropout(0.5, rng)
	x := NewMatrix(1, 1000)
	x.Fill(1)
	// Eval: identity.
	out := d.Forward(x, false)
	for _, v := range out.Data {
		if v != 1 {
			t.Fatal("dropout at eval should be identity")
		}
	}
	// Train: roughly half dropped, survivors scaled by 2.
	out = d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout value %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropped %d of 1000, want ~500", zeros)
	}
	_ = twos
}

func TestDropoutBackwardMask(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := NewDropout(0.5, rng)
	x := NewMatrix(1, 100)
	x.Fill(1)
	out := d.Forward(x, true)
	grad := NewMatrix(1, 100)
	grad.Fill(1)
	back := d.Backward(grad)
	for i := range out.Data {
		if (out.Data[i] == 0) != (back.Data[i] == 0) {
			t.Fatal("backward mask inconsistent with forward")
		}
	}
}

func TestDropoutBadProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout(1.0, rand.New(rand.NewSource(1)))
}

func TestSGDMomentumConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewNetwork(NewDense(2, 1, rng))
	// Learn y = x1 + 2*x2.
	x := randMatrix(rng, 50, 2)
	y := NewMatrix(50, 1)
	for i := 0; i < 50; i++ {
		y.Set(i, 0, x.At(i, 0)+2*x.At(i, 1))
	}
	tr := Trainer{Net: net, Loss: MSE{}, Opt: &SGD{LR: 0.05, Momentum: 0.9}}
	losses, err := tr.Fit(x, y, TrainConfig{Epochs: 100, BatchSize: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if final := losses[len(losses)-1]; final > 1e-3 {
		t.Fatalf("SGD+momentum final loss = %v", final)
	}
}

func TestAdamWShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Zero gradients: AdamW must still shrink weights; plain Adam must
	// leave them unchanged.
	mk := func() *Param {
		p := newParam(4, 4)
		p.W.Randomize(rng, 1)
		return p
	}
	pw := mk()
	before := append([]float64(nil), pw.W.Data...)
	NewAdamW(0.1, 0.5).Step([]*Param{pw})
	for i := range before {
		if before[i] != 0 && math.Abs(pw.W.Data[i]) >= math.Abs(before[i]) {
			t.Fatalf("AdamW did not shrink weight %d: %v -> %v", i, before[i], pw.W.Data[i])
		}
	}

	pa := mk()
	before = append([]float64(nil), pa.W.Data...)
	NewAdam(0.1).Step([]*Param{pa})
	for i := range before {
		if before[i] != pa.W.Data[i] {
			t.Fatal("plain Adam changed weights with zero gradient")
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	logits := randMatrix(rng, 6, 9)
	logits.Scale(30) // stress numerical stability
	p := Softmax(logits)
	for i := 0; i < p.Rows; i++ {
		var sum float64
		for _, v := range p.Row(i) {
			if v < 0 || math.IsNaN(v) {
				t.Fatal("invalid probability")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestOneHotAndArgmax(t *testing.T) {
	y := OneHot([]int{2, 0}, 3)
	if y.At(0, 2) != 1 || y.At(1, 0) != 1 || y.At(0, 0) != 0 {
		t.Fatalf("OneHot wrong: %v", y.Data)
	}
	got := Argmax(y)
	if got[0] != 2 || got[1] != 0 {
		t.Fatalf("Argmax = %v", got)
	}
}

func TestOneHotRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneHot([]int{5}, 3)
}

func TestRMSEKnownValues(t *testing.T) {
	pred := FromRows([][]float64{{1, 1}, {0, 0}})
	tgt := FromRows([][]float64{{0, 0}, {0, 0}})
	got := RMSE(pred, tgt)
	if math.Abs(got[0]-1) > 1e-12 || got[1] != 0 {
		t.Fatalf("RMSE = %v", got)
	}
}
