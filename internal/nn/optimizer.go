package nn

import "math"

// Optimizer updates parameters from their accumulated gradients and
// clears the gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum > 0 {
			if p.M == nil {
				p.M = NewMatrix(p.W.Rows, p.W.Cols)
			}
			for i := range p.W.Data {
				p.M.Data[i] = s.Momentum*p.M.Data[i] - s.LR*p.G.Data[i]
				p.W.Data[i] += p.M.Data[i]
			}
		} else {
			for i := range p.W.Data {
				p.W.Data[i] -= s.LR * p.G.Data[i]
			}
		}
		p.G.Zero()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction and
// optional decoupled weight decay (AdamW when WeightDecay > 0).
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	// WeightDecay applies decoupled L2 regularization: after the Adam
	// update, weights shrink by LR*WeightDecay*w.
	WeightDecay float64

	t int
}

// NewAdam returns Adam with the canonical defaults and the given
// learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// NewAdamW returns Adam with decoupled weight decay.
func NewAdamW(lr, weightDecay float64) *Adam {
	a := NewAdam(lr)
	a.WeightDecay = weightDecay
	return a
}

// Step implements Optimizer. The loop body is the textbook update with
// the slice headers and the weight-decay branch hoisted; every
// floating-point expression matches the naive form operation for
// operation, so hoisting changes nothing numerically.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	k1 := 1 - a.Beta1
	k2 := 1 - a.Beta2
	for _, p := range params {
		if p.M == nil {
			p.M = NewMatrix(p.W.Rows, p.W.Cols)
			p.V = NewMatrix(p.W.Rows, p.W.Cols)
		}
		w, g, m, v := p.W.Data, p.G.Data, p.M.Data, p.V.Data
		for i := range w {
			gi := g[i]
			mi := a.Beta1*m[i] + k1*gi
			vi := a.Beta2*v[i] + k2*gi*gi
			m[i], v[i] = mi, vi
			w[i] -= a.LR * (mi / c1) / (math.Sqrt(vi/c2) + a.Eps)
		}
		if a.WeightDecay > 0 {
			decay := a.LR * a.WeightDecay
			for i := range w {
				w[i] -= decay * w[i]
			}
		}
		p.G.Zero()
	}
}

var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Adam)(nil)
)
