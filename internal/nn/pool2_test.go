package nn

import (
	"math"
	"math/rand"
	"testing"
)

// poolReference is the generic (argmax-capable) pooling loop, kept as
// the semantic reference for the window-2 inference fast paths: best
// starts at the first window element and is replaced only on a
// strictly greater candidate, so ties keep the earlier element and
// NaN candidates never win (x > NaN and NaN > x are both false).
func poolReference(m *MaxPool1D, out, x *Matrix) {
	outLen := m.OutLen()
	for b := 0; b < x.Rows; b++ {
		row := x.Row(b)
		dst := out.Row(b)
		for p := 0; p < outLen; p++ {
			base := p * m.Stride
			for ch := 0; ch < m.Ch; ch++ {
				best := row[base*m.Ch+ch]
				for w := 1; w < m.Window; w++ {
					if v := row[(base+w)*m.Ch+ch]; v > best {
						best = v
					}
				}
				dst[p*m.Ch+ch] = best
			}
		}
	}
}

// TestMaxPool1DWindow2MatchesReference pins the window-2 inference
// fast path (pool2AVX on amd64, the sliced scalar form elsewhere)
// byte-identical to the generic loop — including the edge semantics
// the MAXPD lane ordering was chosen for: a NaN in the second window
// slot must lose to the first, -0 vs +0 ties must keep the first
// slot's value, and equal values must not flip signs.
func TestMaxPool1DWindow2MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	geoms := []struct{ inLen, ch, stride int }{
		{10, 12, 2}, // the CNN stack's shape family: channel quads + remainder
		{9, 7, 2},   // odd channels: scalar tail
		{6, 1, 2},   // single channel: tail only
		{8, 4, 1},   // overlapping windows
		{4, 16, 2},  // pure quads, no tail
	}
	for _, g := range geoms {
		m := NewMaxPool1D(g.inLen, g.ch, 2, g.stride)
		x := randMatrix(rng, 5, g.inLen*g.ch)
		// Seed the edge cases across both window slots.
		specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0}
		for i := range x.Data {
			if rng.Intn(4) == 0 {
				x.Data[i] = specials[rng.Intn(len(specials))]
			}
		}
		// Force exact ties (same value in both window slots) on a few
		// positions of every row.
		for b := 0; b < x.Rows; b++ {
			row := x.Row(b)
			for p := 0; p+2 <= g.inLen; p += 3 {
				for ch := 0; ch < g.ch; ch += 2 {
					row[(p+1)*g.ch+ch] = row[p*g.ch+ch]
				}
			}
		}
		want := NewMatrix(5, m.OutLen()*g.ch)
		poolReference(m, want, x)
		got := NewMatrix(5, m.OutLen()*g.ch)
		m.pool(got, x, nil)
		for i := range got.Data {
			gv, wv := got.Data[i], want.Data[i]
			if gv != wv && !(math.IsNaN(gv) && math.IsNaN(wv)) {
				t.Fatalf("inLen=%d ch=%d stride=%d: elem %d: fast path %v != reference %v",
					g.inLen, g.ch, g.stride, i, gv, wv)
			}
		}
		// Sign-exactness for zeros (== cannot tell -0 from +0).
		for i := range got.Data {
			if got.Data[i] == 0 && math.Signbit(got.Data[i]) != math.Signbit(want.Data[i]) {
				t.Fatalf("inLen=%d ch=%d stride=%d: elem %d: zero sign differs (fast %v, reference %v)",
					g.inLen, g.ch, g.stride, i, math.Signbit(got.Data[i]), math.Signbit(want.Data[i]))
			}
		}
	}
}

// TestMaxPool1DWindow2TrainingAgrees pins the training path (argmax
// recording, generic loop) against the inference fast path on the same
// finite inputs: the forward values must match even though the code
// paths differ.
func TestMaxPool1DWindow2TrainingAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	m := NewMaxPool1D(10, 12, 2, 2)
	x := randMatrix(rng, 4, 10*12)
	train := m.Forward(x, true).Clone()
	infer := m.Forward(x, false)
	if d := maxAbsDiff(train, infer); d != 0 {
		t.Fatalf("training and inference pooling disagree by %g", d)
	}
}
