//go:build race

package nn

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-count guards skip under it.
const raceEnabled = true
