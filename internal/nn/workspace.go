package nn

// Workspace management for the two execution modes of a network.
//
// Training buffers: every layer owns persistent activation/gradient
// matrices (resized with ensure) that are reused across minibatches.
// Training therefore allocates only while buffers grow — a steady-state
// epoch performs no per-batch allocation — but it follows the usual
// single-trainer contract: at most one goroutine may call
// Forward(x, true)/Backward on a network at a time, and the matrices
// they return are owned by the layers and overwritten by the next pass.
//
// Inference scratch: Forward(x, false) must be safe for many
// goroutines sharing one trained model (the detector scores and the
// ensemble votes concurrently), so the inference path never touches
// the layers' training buffers. Each pass borrows an Arena — a bundle
// of scratch matrices handed out slot-by-slot — from a per-network
// pool, and only data copied out of the arena (see PredictInto)
// survives the pass.

// ensure resizes *m to rows x cols, reusing the backing slice when it
// is large enough and (re)allocating otherwise. Contents are
// unspecified. It is the sanctioned way for a layer to obtain its
// persistent training buffers.
func ensure(m **Matrix, rows, cols int) *Matrix {
	need := rows * cols
	if *m == nil || cap((*m).Data) < need {
		*m = &Matrix{Rows: rows, Cols: cols, Data: make([]float64, need)}
		return *m
	}
	(*m).Rows, (*m).Cols, (*m).Data = rows, cols, (*m).Data[:need]
	return *m
}

// ensureZero is ensure followed by zeroing, for buffers that accumulate
// (scatter-add gradients).
func ensureZero(m **Matrix, rows, cols int) *Matrix {
	out := ensure(m, rows, cols)
	out.Zero()
	return out
}

// ensureF64 resizes a float64 slice, reusing capacity. Contents are
// unspecified.
func ensureF64(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

// Arena hands out scratch matrices for one inference pass. Slots are
// recycled: the arena keeps every matrix it has handed out and reuses
// the backing storage on the next pass, so a warmed arena allocates
// nothing. Matrices taken from an arena are only valid until the arena
// is reset or returned to its pool.
type Arena struct {
	slots []*Matrix
	next  int

	// fast carries the network's opt-in relaxed-precision inference
	// flag through the pass: layers read it instead of widening every
	// infer signature. Network.PredictInto/PredictApply set it from the
	// network before each pass, so a pooled arena never leaks a stale
	// value across passes.
	fast bool
}

// take returns the next scratch matrix, resized to rows x cols.
// Contents are unspecified. Consecutive takes return distinct,
// non-aliasing matrices.
func (w *Arena) take(rows, cols int) *Matrix {
	if w.next == len(w.slots) {
		w.slots = append(w.slots, nil)
	}
	m := ensure(&w.slots[w.next], rows, cols)
	w.next++
	return m
}

// reset makes every slot available again without releasing storage.
func (w *Arena) reset() { w.next = 0 }
