// Package obfuscate implements the binary-obfuscation techniques the
// paper's limitations section identifies as Soteria's blind spot:
//
//   - Opaque predicates: conditionals whose outcome is fixed at runtime
//     but unknowable statically. The dead branch never executes, yet the
//     disassembler must treat it as reachable, so junk code enters the
//     CFG and perturbs every CFG-derived feature.
//   - String obfuscation: XOR-scrambling the data section, which blinds
//     byte-level analyses (the image baseline) while leaving the CFG
//     untouched.
//
// These transformations let the repository quantify the paper's own
// caveat — "an adversary may inject a sample of code that would not
// result in a new branching, but would still affect the structure of
// the CFG" — as a measured ablation instead of a discussion point.
package obfuscate

import (
	"fmt"
	"math/rand"

	"soteria/internal/isa"
)

// OpaquePredicates inserts k opaque conditionals into the program. Each
// selected block is split at a random point; the head ends with a
// constant-true test whose dead branch leads to a junk block that the
// CFG contains but execution never reaches. Runtime behaviour is
// preserved exactly.
func OpaquePredicates(p *isa.Program, k int, rng *rand.Rand) (*isa.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("obfuscate: %w", err)
	}
	out := p.Clone()

	type candidate struct{ f, b int }
	var candidates []candidate
	for fi, f := range out.Funcs {
		for bi, b := range f.Blocks {
			if len(b.Body) >= 1 {
				candidates = append(candidates, candidate{fi, bi})
			}
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("obfuscate: no blocks with bodies")
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if k > len(candidates) {
		k = len(candidates)
	}
	chosen := candidates[:k]
	// Deepest-first within each function keeps earlier insertions from
	// shifting later candidates.
	for i := 0; i < len(chosen); i++ {
		for j := i + 1; j < len(chosen); j++ {
			ci, cj := chosen[i], chosen[j]
			if cj.f < ci.f || (cj.f == ci.f && cj.b > ci.b) {
				chosen[i], chosen[j] = cj, ci
			}
		}
	}

	for n, c := range chosen {
		f := out.Funcs[c.f]
		head := f.Blocks[c.b]
		cut := rng.Intn(len(head.Body)) // tail may keep the whole body

		tail := &isa.Block{
			Label: fmt.Sprintf("%s_op%d_t", head.Label, n),
			Body:  append([]isa.Inst(nil), head.Body[cut:]...),
			Term:  head.Term,
		}
		junkLen := 1 + rng.Intn(3)
		junk := &isa.Block{
			Label: fmt.Sprintf("%s_op%d_j", head.Label, n),
			Term:  isa.TermJump{To: tail.Label},
		}
		for i := 0; i < junkLen; i++ {
			junk.Body = append(junk.Body, isa.Inst{
				Op: isa.OpXor, R1: uint8(rng.Intn(8)), R2: uint8(rng.Intn(8)),
			})
		}

		// Opaque predicate: r10 = 1; test r10, r10 sets zero = false, so
		// the JZ branch to the junk block never fires at runtime — but a
		// static analyzer cannot know that.
		head.Body = append(append([]isa.Inst(nil), head.Body[:cut]...),
			isa.Inst{Op: isa.OpMovI, R1: 10, Imm: 1},
			isa.Inst{Op: isa.OpTest, R1: 10, R2: 10},
		)
		head.Term = isa.TermCond{Op: isa.OpJz, To: junk.Label, Else: tail.Label}

		// Layout: head, tail, junk — Else (tail) stays next in layout.
		f.Blocks = append(f.Blocks, nil, nil)
		copy(f.Blocks[c.b+3:], f.Blocks[c.b+1:])
		f.Blocks[c.b+1] = tail
		f.Blocks[c.b+2] = junk
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("obfuscate: produced invalid program: %w", err)
	}
	return out, nil
}

// ScrambleData XOR-obfuscates every writable data section with the key,
// returning a new binary. Executable sections are untouched, so the CFG
// is identical while the byte-level view (image classifiers, string
// scanners) changes completely.
func ScrambleData(bin *isa.Binary, key byte) *isa.Binary {
	out := &isa.Binary{Entry: bin.Entry, Sections: make([]isa.Section, len(bin.Sections))}
	for i, s := range bin.Sections {
		data := append([]byte(nil), s.Data...)
		if !s.Executable() {
			for j := range data {
				data[j] ^= key
			}
		}
		out.Sections[i] = isa.Section{Name: s.Name, Addr: s.Addr, Flags: s.Flags, Data: data}
	}
	return out
}
