package obfuscate

import (
	"math/rand"
	"reflect"
	"testing"

	"soteria/internal/disasm"
	"soteria/internal/isa"
	"soteria/internal/malgen"
)

func sample(t *testing.T, nodes int) *malgen.Sample {
	t.Helper()
	g := malgen.NewGenerator(malgen.Config{Seed: 11})
	s, err := g.SampleSized(malgen.Gafgyt, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpaquePredicatesGrowCFG(t *testing.T) {
	s := sample(t, 40)
	rng := rand.New(rand.NewSource(1))
	obf, err := OpaquePredicates(s.Program, 6, rng)
	if err != nil {
		t.Fatalf("OpaquePredicates: %v", err)
	}
	bin, _, err := isa.Assemble(obf, isa.AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := disasm.Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	// Each predicate adds a tail block and a junk block, plus possibly a
	// jump trampoline when the split block's conditional relied on
	// fallthrough layout.
	if got := cfg.NumNodes(); got < s.Nodes()+12 || got > s.Nodes()+18 {
		t.Fatalf("obfuscated CFG nodes = %d, want in [%d, %d]", got, s.Nodes()+12, s.Nodes()+18)
	}
	// Junk blocks are statically reachable (the whole point).
	for id, r := range cfg.G.Reachable(cfg.EntryNode()) {
		if !r {
			t.Fatalf("node %d unreachable: junk must be CFG-reachable", id)
		}
	}
}

func TestOpaquePredicatesPreserveBehaviour(t *testing.T) {
	s := sample(t, 40)
	rng := rand.New(rand.NewSource(2))
	obf, err := OpaquePredicates(s.Program, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	bin, _, err := isa.Assemble(obf, isa.AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vmO := isa.NewVM(s.Binary)
	if err := vmO.Run(500000); err != nil {
		t.Fatal(err)
	}
	vmX := isa.NewVM(bin)
	if err := vmX.Run(500000); err != nil {
		t.Fatalf("obfuscated run: %v", err)
	}
	if !reflect.DeepEqual(vmO.Syscalls, vmX.Syscalls) {
		t.Fatal("opaque predicates changed behaviour")
	}
}

func TestOpaquePredicatesDoNotMutateInput(t *testing.T) {
	s := sample(t, 30)
	before := s.Program.NumBlocks()
	if _, err := OpaquePredicates(s.Program, 3, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	if s.Program.NumBlocks() != before {
		t.Fatal("input program mutated")
	}
}

func TestOpaquePredicatesErrors(t *testing.T) {
	if _, err := OpaquePredicates(&isa.Program{}, 1, rand.New(rand.NewSource(4))); err == nil {
		t.Fatal("invalid program should error")
	}
	p := &isa.Program{Funcs: []*isa.Function{{
		Name:   "main",
		Blocks: []*isa.Block{{Label: "entry", Term: isa.TermHalt{}}},
	}}}
	if _, err := OpaquePredicates(p, 1, rand.New(rand.NewSource(5))); err == nil {
		t.Fatal("bodyless program should error")
	}
}

func TestScrambleDataKeepsCFGChangesBytes(t *testing.T) {
	s := sample(t, 30)
	obf := ScrambleData(s.Binary, 0x5A)
	cfg, err := disasm.Disassemble(obf)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumNodes() != s.Nodes() {
		t.Fatalf("scramble changed CFG: %d vs %d", cfg.NumNodes(), s.Nodes())
	}
	origData := s.Binary.Section(".data")
	obfData := obf.Section(".data")
	if origData == nil || obfData == nil {
		t.Fatal("missing data sections")
	}
	if reflect.DeepEqual(origData.Data, obfData.Data) {
		t.Fatal("data section unchanged")
	}
	// Double scramble restores.
	restored := ScrambleData(obf, 0x5A)
	if !reflect.DeepEqual(restored.Section(".data").Data, origData.Data) {
		t.Fatal("XOR scramble not involutive")
	}
	// Text untouched.
	if !reflect.DeepEqual(obf.Section(".text").Data, s.Binary.Section(".text").Data) {
		t.Fatal("text section modified")
	}
}
