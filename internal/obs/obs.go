// Package obs is the serving path's observability layer: atomic
// counters and gauges, fixed-bucket histograms, an exponentially
// weighted rolling mean, and a named registry that snapshots everything
// as expvar-style JSON for a /metrics endpoint.
//
// Two contracts shape the API, both load-bearing for the pipeline that
// uses it (see DESIGN.md §9):
//
//   - Zero cost when off. Every metric operation is a method on a
//     pointer that may be nil, and a nil receiver returns immediately —
//     so uninstrumented components pay one pointer check per
//     observation site, read no clocks, and allocate nothing. Code
//     never needs an "is observability enabled" branch of its own.
//
//   - Zero allocation when on. Observations touch only storage
//     allocated at registration time (atomic words, fixed bucket
//     arrays), so instrumenting a hot loop cannot add allocations to
//     it. AllocsPerRun guards in the instrumented packages pin this.
//
// Observations are write-only from the instrumented code's point of
// view: nothing in this package feeds back into model math, which keeps
// decisions bit-identical with observability on or off (the determinism
// invariant; core's equivalence test enforces it). The wall-clock reads
// that latency histograms need live here — behind the nil check — and
// deliberately not in the model-affecting packages, which the
// determinism analyzer keeps free of time.Now.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil *Counter discards all operations.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64. The zero value is ready to use; a
// nil *Gauge discards all operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Add atomically accumulates delta into the gauge, for level-style
// gauges (queue depths, in-flight counts) maintained by concurrent
// increments and decrements rather than last-value writes.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, delta)
}

// addFloat atomically accumulates delta into a float64 stored as bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Info is a last-value-wins string, for identity facts a dashboard
// reads next to the numbers (the active model version, a build tag).
// The zero value reports ""; a nil *Info discards all operations.
type Info struct {
	v atomic.Value // string
}

// Set records s.
func (i *Info) Set(s string) {
	if i == nil {
		return
	}
	i.v.Store(s)
}

// Value returns the last recorded string ("" on a nil or unset Info).
func (i *Info) Value() string {
	if i == nil {
		return ""
	}
	s, _ := i.v.Load().(string)
	return s
}

// ewmaUnseeded marks an EWMA that has seen no observations; the first
// Observe seeds the mean with its value instead of decaying from zero.
var ewmaUnseeded = math.Float64bits(math.NaN())

// EWMA is an exponentially weighted moving average: each observation
// moves the mean by alpha times its distance from the current mean, so
// the statistic tracks the recent distribution without storing a
// window. A nil *EWMA discards all operations. Construct through
// Registry.EWMA, or NewEWMA for an unregistered rolling mean (the zero
// value reports 0 but never seeds).
type EWMA struct {
	alpha float64
	bits  atomic.Uint64
}

// NewEWMA returns a standalone rolling mean with decay alpha in (0, 1],
// for statistics a component keeps for itself rather than publishing
// under a registry name.
func NewEWMA(alpha float64) *EWMA {
	e := &EWMA{alpha: alpha}
	e.bits.Store(ewmaUnseeded)
	return e
}

// Observe folds v into the rolling mean.
func (e *EWMA) Observe(v float64) {
	if e == nil {
		return
	}
	for {
		old := e.bits.Load()
		var nw float64
		if old == ewmaUnseeded {
			nw = v
		} else {
			m := math.Float64frombits(old)
			nw = m + e.alpha*(v-m)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(nw)) {
			return
		}
	}
}

// Value returns the current rolling mean (0 before any observation or
// on a nil EWMA).
func (e *EWMA) Value() float64 {
	if e == nil {
		return 0
	}
	b := e.bits.Load()
	if b == ewmaUnseeded {
		return 0
	}
	return math.Float64frombits(b)
}

// Histogram counts observations into fixed buckets: observation v lands
// in the first bucket whose upper bound is >= v, or the overflow bucket
// past the last bound. Bounds are fixed at registration, so Observe is
// a binary search plus three atomic updates — no allocation, no lock.
// A nil *Histogram discards all operations.
type Histogram struct {
	bounds []float64       // ascending upper bounds, immutable
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// Start begins a latency measurement: it reads the monotonic clock and
// returns the start time. On a nil histogram it returns the zero time
// without touching the clock, so an uninstrumented site costs one
// pointer check.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// Stop completes a Start: it observes the elapsed time in nanoseconds.
// A no-op on a nil histogram.
func (h *Histogram) Stop(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(float64(time.Since(start).Nanoseconds()))
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the mean observed value (0 before any observation).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns a bucket-interpolated estimate of the q-quantile of
// the observed distribution: the target rank is located by a cumulative
// sweep of the bucket counts, and the estimate interpolates linearly
// across the owning bucket's bound interval (assuming observations
// spread uniformly within a bucket — the standard fixed-bucket
// estimator). The first bucket interpolates up from 0. A rank landing
// in the overflow bucket saturates at the last finite bound: the
// histogram cannot resolve anything past it, so choose bucket layouts
// whose top bound exceeds the values worth distinguishing
// (DurationBuckets tops out near one second). q is clamped to [0, 1].
// Returns 0 on a nil histogram or before any observation.
// Allocation-free: two passes over the fixed bucket array, no locks —
// under concurrent observation the estimate is computed against one
// self-consistent sweep of the counts.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Sum the buckets rather than trusting h.count: a concurrent Observe
	// between the two would make the target rank unreachable.
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= target {
			if i >= len(h.bounds) {
				// Overflow bucket: saturate at the last finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (target - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	// Counts shrank mid-sweep is impossible (counts only grow); reaching
	// here means rounding pushed target past the final cumulative sum.
	return h.bounds[len(h.bounds)-1]
}

// Bucket is one row of a histogram snapshot: the count of observations
// at or below the upper bound Le (math.Inf(1) for the overflow bucket).
type Bucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// MarshalJSON renders the overflow bound as the string "+Inf" (IEEE
// infinity has no JSON number form).
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "\"+Inf\""
	if !math.IsInf(b.Le, 1) {
		le = strconv.FormatFloat(b.Le, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// Buckets snapshots the per-bucket counts. Each bucket is independent
// (not cumulative). Returns nil on a nil histogram.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	out := make([]Bucket, len(h.counts))
	for i := range h.counts {
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out[i] = Bucket{Le: le, Count: h.counts[i].Load()}
	}
	return out
}

// ExpBuckets returns n ascending bucket bounds starting at start and
// growing by factor: start, start*factor, ... — the usual latency
// layout, where each bucket covers a constant relative error.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// DurationBuckets is the shared latency layout: 21 exponential
// nanosecond bounds from 1µs to ~1s (factor 2), plus overflow. Fine
// enough to separate a 2ms queue wait from a 30ms batch, coarse enough
// that a snapshot stays readable.
func DurationBuckets() []float64 { return ExpBuckets(1e3, 2, 21) }

// TrainHooks is the per-epoch observation set a training loop emits:
// last epoch's mean loss, epoch wall time, and epochs completed.
// Construct through Registry.TrainHooks; a nil *TrainHooks discards
// everything, so trainers thread it unconditionally.
type TrainHooks struct {
	EpochLoss *Gauge
	EpochNs   *Histogram
	Epochs    *Counter
}

// StartEpoch begins one epoch's wall-time measurement (zero time, no
// clock read, on nil hooks).
func (t *TrainHooks) StartEpoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.EpochNs.Start()
}

// EndEpoch completes StartEpoch and records the epoch's mean loss.
func (t *TrainHooks) EndEpoch(start time.Time, loss float64) {
	if t == nil {
		return
	}
	t.EpochNs.Stop(start)
	t.EpochLoss.Set(loss)
	t.Epochs.Inc()
}
