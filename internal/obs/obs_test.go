package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Fatalf("gauge = %v, want -1.25", got)
	}
	// Registration is idempotent: same name, same metric.
	if r.Counter("c") != c || r.Gauge("g") != g {
		t.Fatal("re-registration returned a different metric")
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering name as a different kind did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+5+10+50+1000; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	b := h.Buckets()
	wantCounts := []uint64{2, 2, 1, 1} // <=1, <=10, <=100, overflow
	if len(b) != len(wantCounts) {
		t.Fatalf("got %d buckets, want %d", len(b), len(wantCounts))
	}
	for i, w := range wantCounts {
		if b[i].Count != w {
			t.Fatalf("bucket %d count = %d, want %d", i, b[i].Count, w)
		}
	}
	if !math.IsInf(b[3].Le, 1) {
		t.Fatalf("overflow bound = %v, want +Inf", b[3].Le)
	}
}

// TestHistogramQuantile checks the bucket-interpolated estimator
// against distributions whose true quantiles are known, within the
// resolution a fixed bucket layout can deliver.
func TestHistogramQuantile(t *testing.T) {
	// Uniform 1..1000 over unit-wide buckets: every quantile is exact up
	// to one bucket width.
	r := NewRegistry()
	u := r.Histogram("u", LinearBuckets(1, 1, 1000))
	for i := 1; i <= 1000; i++ {
		u.Observe(float64(i))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500}, {0.99, 990}, {0.999, 999}, {0.25, 250}, {1, 1000},
	} {
		if got := u.Quantile(tc.q); math.Abs(got-tc.want) > 1 {
			t.Errorf("uniform Quantile(%v) = %v, want %v ± 1", tc.q, got, tc.want)
		}
	}

	// A point mass inside one wide bucket: the estimate must land inside
	// that bucket's interval, interpolated by rank.
	p := r.Histogram("p", []float64{10, 100, 1000})
	for i := 0; i < 100; i++ {
		p.Observe(50)
	}
	if got := p.Quantile(0.5); got <= 10 || got > 100 {
		t.Errorf("point-mass Quantile(0.5) = %v, want in (10, 100]", got)
	}

	// Ranks past the last bound saturate at it instead of inventing
	// values the histogram cannot resolve.
	o := r.Histogram("o", []float64{10, 100})
	for i := 0; i < 10; i++ {
		o.Observe(1e6)
	}
	if got := o.Quantile(0.99); got != 100 {
		t.Errorf("overflow Quantile(0.99) = %v, want 100 (last bound)", got)
	}

	// Mixed: 90 fast + 10 slow observations — p50 stays in the fast
	// bucket, p99 reaches the slow one.
	m := r.Histogram("m", []float64{1, 2, 4, 8, 16})
	for i := 0; i < 90; i++ {
		m.Observe(1)
	}
	for i := 0; i < 10; i++ {
		m.Observe(10)
	}
	if got := m.Quantile(0.5); got > 1 {
		t.Errorf("mixed Quantile(0.5) = %v, want <= 1", got)
	}
	if got := m.Quantile(0.99); got <= 8 || got > 16 {
		t.Errorf("mixed Quantile(0.99) = %v, want in (8, 16]", got)
	}

	// Edges: empty and nil histograms report 0; q is clamped.
	e := r.Histogram("e", []float64{1})
	if e.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile must be 0")
	}
	if got := u.Quantile(-1); math.Abs(got-1) > 1 {
		t.Errorf("Quantile(-1) = %v, want ~min", got)
	}
	if got := u.Quantile(2); math.Abs(got-1000) > 1 {
		t.Errorf("Quantile(2) = %v, want ~max", got)
	}
}

// TestQuantileAllocationFree pins Quantile's zero-allocation contract —
// loadgen and /metrics call it on live serving histograms.
func TestQuantileAllocationFree(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", DurationBuckets())
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) * 1e4)
	}
	var nilH *Histogram
	if avg := testing.AllocsPerRun(100, func() {
		_ = h.Quantile(0.5)
		_ = h.Quantile(0.99)
		_ = h.Quantile(0.999)
		_ = nilH.Quantile(0.5)
	}); avg != 0 {
		t.Errorf("Quantile: %v allocs/op, want 0", avg)
	}
}

// TestGaugeAdd covers the level-style gauge path used by the batcher's
// queue-depth export.
func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge after +3-1 = %v, want 2", got)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge after balanced concurrent adds = %v, want 2", got)
	}
	var nilG *Gauge
	nilG.Add(5) // must not panic
}

func TestHistogramStartStop(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", DurationBuckets())
	start := h.Start()
	time.Sleep(time.Millisecond)
	h.Stop(start)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.Sum() < float64(time.Millisecond.Nanoseconds()) {
		t.Fatalf("observed %v ns, want >= 1ms", h.Sum())
	}
}

func TestEWMASeedsAndDecays(t *testing.T) {
	r := NewRegistry()
	e := r.EWMA("m", 0.5)
	if e.Value() != 0 {
		t.Fatalf("unseeded EWMA = %v, want 0", e.Value())
	}
	e.Observe(10) // seeds
	if e.Value() != 10 {
		t.Fatalf("after seed = %v, want 10", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("after decay = %v, want 15", e.Value())
	}
}

// TestNewEWMAStandalone pins the unregistered constructor: it must seed
// on first observation exactly like a registry-built EWMA (the zero
// value would decay from 0 instead).
func TestNewEWMAStandalone(t *testing.T) {
	e := NewEWMA(0.25)
	if e.Value() != 0 {
		t.Fatalf("unseeded value = %v, want 0", e.Value())
	}
	e.Observe(8) // seeds: mean jumps to the observation, no decay from 0
	if e.Value() != 8 {
		t.Fatalf("after seed = %v, want 8", e.Value())
	}
	e.Observe(16)
	if e.Value() != 10 {
		t.Fatalf("after decay = %v, want 10", e.Value())
	}
}

// TestInfoMetric covers the string metric: last-value-wins semantics,
// idempotent registration, and snapshot inclusion as a plain string.
func TestInfoMetric(t *testing.T) {
	r := NewRegistry()
	in := r.Info("active_version")
	if in.Value() != "" {
		t.Fatalf("unset Info = %q, want empty", in.Value())
	}
	in.Set("a1b2")
	in.Set("c3d4")
	if in.Value() != "c3d4" {
		t.Fatalf("Info = %q, want last write", in.Value())
	}
	if again := r.Info("active_version"); again != in {
		t.Fatal("re-registration returned a different Info")
	}
	snap := r.Snapshot()
	if got, _ := snap["active_version"].(string); got != "c3d4" {
		t.Fatalf("snapshot info = %v, want \"c3d4\"", snap["active_version"])
	}
}

func TestNilRegistryAndNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBuckets())
	e := r.EWMA("e", 0.1)
	in := r.Info("i")
	th := r.TrainHooks("t")
	if c != nil || g != nil || h != nil || e != nil || in != nil || th != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	h.Stop(h.Start())
	e.Observe(1)
	in.Set("x")
	th.EndEpoch(th.StartEpoch(), 1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || e.Value() != 0 || in.Value() != "" {
		t.Fatal("nil metric reported a value")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	if start := h.Start(); !start.IsZero() {
		t.Fatal("nil histogram Start must not read the clock")
	}
}

// TestObserveAllocationFree pins the zero-allocation contract of every
// hot-path operation, nil and non-nil.
func TestObserveAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBuckets())
	e := r.EWMA("e", 0.1)
	var nilC *Counter
	var nilH *Histogram
	checks := map[string]func(){
		"counter":   func() { c.Add(1) },
		"gauge":     func() { g.Set(1.5) },
		"gauge-add": func() { g.Add(1) },
		"hist":      func() { h.Observe(12345) },
		"ewma":      func() { e.Observe(2.5) },
		"timer":     func() { h.Stop(h.Start()) },
		"nil-cnt":   func() { nilC.Inc() },
		"nil-hist":  func() { nilH.Stop(nilH.Start()) },
	}
	for name, fn := range checks {
		if avg := testing.AllocsPerRun(100, fn); avg != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, avg)
		}
	}
}

// TestConcurrentObservations hammers every metric kind from many
// goroutines (run under -race) and checks the totals.
func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{10, 100})
	e := r.EWMA("e", 0.01)
	g := r.Gauge("g")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(1)
				e.Observe(float64(w))
				g.Set(float64(i))
				// Concurrent registration of the same name must stay
				// safe and idempotent.
				if got := r.Counter("c"); got != c {
					t.Error("concurrent re-registration returned a different counter")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker || h.Sum() != float64(workers*perWorker) {
		t.Fatalf("hist count=%d sum=%v, want %d", h.Count(), h.Sum(), workers*perWorker)
	}
}

func TestSnapshotAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(7)
	r.Gauge("drift").Set(0.5)
	r.Histogram("wait_ns", []float64{1000}).Observe(500)
	r.EWMA("re_mean", 0.1).Observe(3)

	snap := r.Snapshot()
	if snap["requests"].(uint64) != 7 {
		t.Fatalf("snapshot requests = %v", snap["requests"])
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("metrics endpoint is not valid JSON: %v\n%s", err, rec.Body)
	}
	for _, name := range []string{"requests", "drift", "wait_ns", "re_mean"} {
		if _, ok := got[name]; !ok {
			t.Errorf("metric %q missing from /metrics output", name)
		}
	}
	if !strings.Contains(rec.Body.String(), `"count": 1`) {
		t.Errorf("histogram snapshot missing count:\n%s", rec.Body)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", exp, want)
		}
	}
	lin := LinearBuckets(0, 0.5, 3)
	wantLin := []float64{0, 0.5, 1}
	for i := range wantLin {
		if lin[i] != wantLin[i] {
			t.Fatalf("LinearBuckets = %v, want %v", lin, wantLin)
		}
	}
	db := DurationBuckets()
	if db[0] != 1e3 || len(db) != 21 {
		t.Fatalf("DurationBuckets = first %v len %d", db[0], len(db))
	}
}
