package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
)

// Registry is a named metric namespace. Registration (Counter, Gauge,
// Histogram, EWMA) is idempotent — asking for an existing name returns
// the existing metric, so components may re-instrument freely — and
// kind-checked: reusing a name as a different metric kind panics, since
// that is always a wiring bug.
//
// A nil *Registry is the off switch: every registration returns nil,
// and nil metrics discard all operations, so a component instrumented
// against a nil registry runs the uninstrumented fast path.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// lookup returns the metric registered under name, or registers the one
// built by mk. The caller asserts the concrete type; a kind clash
// panics with both kinds named.
func lookup[T any](r *Registry, name string, mk func() T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		t, ok := m.(T)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
		}
		return t
	}
	t := mk()
	r.metrics[name] = t
	return t
}

// Counter registers (or fetches) the counter called name. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Counter { return new(Counter) })
}

// Gauge registers (or fetches) the gauge called name. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Gauge { return new(Gauge) })
}

// Histogram registers (or fetches) the histogram called name with the
// given ascending bucket bounds (copied; an overflow bucket is added
// past the last bound). Returns nil on a nil registry. Bounds of an
// already-registered histogram win — callers re-instrumenting with
// different bounds get the original.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Histogram {
		b := append([]float64(nil), bounds...)
		return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	})
}

// EWMA registers (or fetches) the rolling mean called name with decay
// alpha in (0, 1]. Returns nil on a nil registry.
func (r *Registry) EWMA(name string, alpha float64) *EWMA {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *EWMA { return NewEWMA(alpha) })
}

// Info registers (or fetches) the string metric called name. Returns
// nil on a nil registry.
func (r *Registry) Info(name string) *Info {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Info { return new(Info) })
}

// TrainHooks registers the per-epoch training metrics under
// prefix+".epoch_loss", ".epoch_ns", and ".epochs". Returns nil on a
// nil registry.
func (r *Registry) TrainHooks(prefix string) *TrainHooks {
	if r == nil {
		return nil
	}
	return &TrainHooks{
		EpochLoss: r.Gauge(prefix + ".epoch_loss"),
		EpochNs:   r.Histogram(prefix+".epoch_ns", DurationBuckets()),
		Epochs:    r.Counter(prefix + ".epochs"),
	}
}

// histSnapshot is a histogram's JSON form. The three fixed quantiles
// are bucket-interpolated estimates (see Histogram.Quantile), published
// so /metrics consumers — the fleet front door's admission control and
// cmd/loadgen reports among them — read tail latency without
// re-deriving it from the bucket table.
type histSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P99     float64  `json:"p99"`
	P999    float64  `json:"p999"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot returns a point-in-time copy of every metric, keyed by name:
// counters as integers, gauges and EWMAs as floats, infos as strings,
// histograms as {count, sum, mean, buckets}. JSON-encoding the result
// is deterministic (Go orders map keys). Returns nil on a nil registry.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.metrics))
	for name, m := range r.metrics {
		switch m := m.(type) {
		case *Counter:
			out[name] = m.Value()
		case *Gauge:
			out[name] = m.Value()
		case *EWMA:
			out[name] = m.Value()
		case *Info:
			out[name] = m.Value()
		case *Histogram:
			out[name] = histSnapshot{
				Count:   m.Count(),
				Sum:     m.Sum(),
				Mean:    m.Mean(),
				P50:     m.Quantile(0.50),
				P99:     m.Quantile(0.99),
				P999:    m.Quantile(0.999),
				Buckets: m.Buckets(),
			}
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON (expvar-style: one
// top-level object keyed by metric name).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the snapshot at any path, for mounting as /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		// Marshal before writing: once Encode starts streaming the 200
		// header is committed, so a mid-write error (client gone) must
		// not be answered with http.Error.
		buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(buf, '\n'))
	})
}
