package par

// Overlap runs a two-stage producer/consumer pipeline over n sequential
// items with bounded look-ahead: produce(i, slot) runs on a dedicated
// goroutine in item order, consume(i, slot) runs on the calling
// goroutine in item order, and the producer never runs more than depth
// items ahead of the consumer. slot = i % depth names the reusable
// buffer set item i travels in: consume(i, slot) returning is what
// frees the slot for produce(i+depth, slot), so depth buffer sets cover
// the whole run without copying between stages.
//
// With depth <= 1 (or a single item) the stages simply alternate on the
// caller; otherwise production of item i+1 overlaps consumption of
// item i. Either stage may itself fan out through this package's
// parallel loops — the producer goroutine is not a pool worker, and
// nested parallelism degrades to serial execution rather than
// deadlocking. Determinism follows from the fixed item order: each
// stage sees items 0..n-1 in order regardless of scheduling. Both
// callbacks must return rather than panic — a panic on the producer
// goroutine cannot be recovered by the caller — so stages should record
// per-item failures in their slot buffers instead.
func Overlap(n, depth int, produce, consume func(i, slot int)) {
	if n <= 0 {
		return
	}
	if depth > n {
		depth = n
	}
	if depth <= 1 {
		for i := 0; i < n; i++ {
			produce(i, 0)
			consume(i, 0)
		}
		return
	}
	free := make(chan struct{}, depth)
	for i := 0; i < depth; i++ {
		free <- struct{}{}
	}
	ready := make(chan struct{}, depth)
	go func() {
		for i := 0; i < n; i++ {
			<-free
			produce(i, i%depth)
			ready <- struct{}{}
		}
	}()
	for i := 0; i < n; i++ {
		<-ready
		consume(i, i%depth)
		free <- struct{}{}
	}
}
