package par

import (
	"sync/atomic"
	"testing"
)

// TestOverlapOrderAndSlots pins the pipeline contract: both stages see
// every item exactly once in ascending order, each item rides slot
// i%depth, and every consume observes the value its produce wrote —
// i.e. slot reuse never overtakes consumption.
func TestOverlapOrderAndSlots(t *testing.T) {
	for _, depth := range []int{0, 1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 5, 17} {
			effDepth := depth
			if effDepth > n {
				effDepth = n
			}
			if effDepth < 1 {
				effDepth = 1
			}
			slots := make([]int, effDepth)
			var produced, consumed []int
			Overlap(n, depth,
				func(i, slot int) {
					if slot != i%effDepth {
						t.Errorf("n=%d depth=%d: produce(%d) got slot %d, want %d", n, depth, i, slot, i%effDepth)
					}
					produced = append(produced, i)
					slots[slot] = i
				},
				func(i, slot int) {
					if slots[slot] != i {
						t.Errorf("n=%d depth=%d: consume(%d) sees slot value %d", n, depth, i, slots[slot])
					}
					consumed = append(consumed, i)
				})
			if len(produced) != n || len(consumed) != n {
				t.Fatalf("n=%d depth=%d: %d produced, %d consumed", n, depth, len(produced), len(consumed))
			}
			for i := 0; i < n; i++ {
				if produced[i] != i || consumed[i] != i {
					t.Fatalf("n=%d depth=%d: order produced=%v consumed=%v", n, depth, produced, consumed)
				}
			}
		}
	}
}

// TestOverlapBoundedLookahead pins the look-ahead bound: the producer
// never runs more than depth items ahead of the consumer.
func TestOverlapBoundedLookahead(t *testing.T) {
	const n, depth = 40, 3
	var produced, consumed atomic.Int64
	Overlap(n, depth,
		func(i, slot int) {
			if ahead := produced.Load() - consumed.Load(); ahead > depth {
				t.Errorf("produce(%d): %d items in flight, depth %d", i, ahead, depth)
			}
			produced.Add(1)
		},
		func(i, slot int) {
			consumed.Add(1)
		})
	if produced.Load() != n || consumed.Load() != n {
		t.Fatalf("produced %d consumed %d, want %d", produced.Load(), consumed.Load(), n)
	}
}

// TestOverlapSlotGenerations stamps every cell of each slot's buffer
// with the producing item's index (its "generation") and checks, on
// both stages, that no other generation ever bleeds in: produce must
// find the slot exactly as its previous tenant (item i-depth) left it —
// proof the consumer released it — and consume must see its own item's
// stamps intact. Under -race, any slot reuse that overtakes consumption
// is also a detectable data race on the buffer cells.
func TestOverlapSlotGenerations(t *testing.T) {
	const width = 64
	for _, tc := range []struct{ n, depth int }{
		{0, 2},   // n = 0: no callbacks at all
		{7, 1},   // depth 1: stages alternate on the caller
		{5, 8},   // depth >= n: every item gets its own slot
		{16, 16}, // depth == n exactly
		{33, 2},  // steady-state slot reuse
	} {
		effDepth := tc.depth
		if effDepth > tc.n {
			effDepth = tc.n
		}
		if effDepth < 1 {
			effDepth = 1
		}
		bufs := make([][]int64, effDepth)
		for s := range bufs {
			bufs[s] = make([]int64, width)
			for j := range bufs[s] {
				bufs[s][j] = -1 // no tenant yet
			}
		}
		produces, consumes := 0, 0
		Overlap(tc.n, tc.depth,
			func(i, slot int) {
				produces++
				want := int64(-1)
				if i >= effDepth {
					want = int64(i - effDepth) // the slot's previous tenant
				}
				for j, v := range bufs[slot] {
					if v != want {
						t.Errorf("n=%d depth=%d: produce(%d) found generation %d in slot %d cell %d, want %d",
							tc.n, tc.depth, i, v, slot, j, want)
						return
					}
				}
				for j := range bufs[slot] {
					bufs[slot][j] = int64(i)
				}
			},
			func(i, slot int) {
				consumes++
				for j, v := range bufs[slot] {
					if v != int64(i) {
						t.Errorf("n=%d depth=%d: consume(%d) sees generation %d in slot %d cell %d",
							tc.n, tc.depth, i, v, slot, j)
						return
					}
				}
			})
		if produces != tc.n || consumes != tc.n {
			t.Fatalf("n=%d depth=%d: %d produces, %d consumes", tc.n, tc.depth, produces, consumes)
		}
	}
}

// TestOverlapStagesMayUsePool pins that both stages can fan out through
// the package's own parallel loops without deadlocking.
func TestOverlapStagesMayUsePool(t *testing.T) {
	const n, depth, width = 6, 2, 32
	buf := make([][]int, depth)
	for i := range buf {
		buf[i] = make([]int, width)
	}
	total := 0
	Overlap(n, depth,
		func(i, slot int) {
			For(width, func(j int) { buf[slot][j] = i + j })
		},
		func(i, slot int) {
			sum := 0
			For(width, func(j int) { _ = j }) // consumer side may also fan out
			for j := 0; j < width; j++ {
				sum += buf[slot][j] - i - j
			}
			total += sum
		})
	if total != 0 {
		t.Fatalf("slot contents corrupted: residual %d", total)
	}
}
