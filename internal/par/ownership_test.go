package par

import (
	"sort"
	"sync"
	"testing"
)

// collectRanges runs one ForChunkedGrain call and returns the [lo, hi)
// ranges the body observed, sorted by lo.
func collectRanges(p *Pool, n, grain int) [][2]int {
	var mu sync.Mutex
	var out [][2]int
	p.ForChunkedGrain(n, grain, func(lo, hi int) {
		mu.Lock()
		out = append(out, [2]int{lo, hi})
		mu.Unlock()
	})
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// TestForChunkedGrainOwnershipDeterministic is the sharded-GEMM
// ownership contract, stressed on real pools: the chunk boundaries a
// call hands out are a pure function of (n, grain, worker count) —
// which worker claims which chunk varies run to run, but the set of
// [lo, hi) ranges never does. The parallel kernels rely on exactly
// this: statically owned row ranges make sharded output byte-identical
// to serial output regardless of scheduling.
func TestForChunkedGrainOwnershipDeterministic(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 16} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 5, 63, 64, 65, 257, 1000} {
			for _, grain := range []int{1, 7, 64, 1000} {
				ref := collectRanges(p, n, grain)
				for trial := 0; trial < 20; trial++ {
					got := collectRanges(p, n, grain)
					if len(got) != len(ref) {
						t.Fatalf("workers=%d n=%d grain=%d: trial %d handed out %d ranges, first run %d",
							workers, n, grain, trial, len(got), len(ref))
					}
					for i := range got {
						if got[i] != ref[i] {
							t.Fatalf("workers=%d n=%d grain=%d: trial %d range %d = %v, first run %v",
								workers, n, grain, trial, i, got[i], ref[i])
						}
					}
				}
				// The stable boundaries must also be a partition of [0, n).
				next := 0
				for i, r := range ref {
					if r[0] != next || r[1] <= r[0] {
						t.Fatalf("workers=%d n=%d grain=%d: range %d = %v does not continue the partition at %d",
							workers, n, grain, i, r, next)
					}
					next = r[1]
				}
				if next != n && !(n <= 0 && next == 0) {
					t.Fatalf("workers=%d n=%d grain=%d: ranges cover [0, %d), want [0, %d)", workers, n, grain, next, n)
				}
			}
		}
	}
}

// TestForChunkedGrainEdges pins the degenerate inputs the sharded
// kernels lean on: n = 0 must invoke nothing, and 0 < n <= grain must
// collapse to one serial full-range call.
func TestForChunkedGrainEdges(t *testing.T) {
	p := NewPool(8)
	for _, n := range []int{0, -3} {
		if got := collectRanges(p, n, 4); len(got) != 0 {
			t.Fatalf("n=%d: body invoked with ranges %v, want none", n, got)
		}
	}
	for _, n := range []int{1, 4, 7} {
		got := collectRanges(p, n, 7)
		if len(got) != 1 || got[0] != [2]int{0, n} {
			t.Fatalf("n=%d grain=7: got ranges %v, want exactly [0 %d)", n, got, n)
		}
	}
}
