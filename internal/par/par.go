// Package par provides the repository's shared worker-pool primitives.
// Feature extraction, matrix multiplication, and pipeline batch stages
// all fan identical, independent work items across GOMAXPROCS
// goroutines; centralizing the loop here keeps the scheduling policy
// (and its determinism guarantees) in one place.
//
// All helpers block until every item has run, and all are
// result-deterministic as long as fn writes only to per-index slots:
// scheduling order varies, outcomes do not. The work runs on one
// persistent process-wide Pool (workers are reused across calls, not
// spawned per call), and the submitting goroutine always participates,
// so nested parallel calls degrade to serial execution instead of
// deadlocking.
package par

// For runs fn(i) for every i in [0, n) on up to GOMAXPROCS workers.
// Items are handed out dynamically (work stealing via a shared atomic
// cursor), which balances uneven per-item cost — e.g. CFGs of very
// different sizes during feature extraction.
func For(n int, fn func(i int)) { shared.For(n, fn) }

// ForChunked partitions [0, n) into at most GOMAXPROCS contiguous
// ranges and runs fn(lo, hi) for each range. Use it when per-item cost
// is uniform and the body benefits from processing a contiguous span
// (e.g. row blocks of a matrix product).
func ForChunked(n int, fn func(lo, hi int)) { shared.ForChunked(n, fn) }

// ForChunkedGrain is ForChunked with a minimum range size: no range
// covers fewer than minGrain indices, so trivially small bodies are not
// fanned across every core. When minGrain >= n the body runs serially
// on the caller as a single fn(0, n) call.
func ForChunkedGrain(n, minGrain int, fn func(lo, hi int)) {
	shared.ForChunkedGrain(n, minGrain, fn)
}
