// Package par provides the repository's shared worker-pool primitives.
// Feature extraction, matrix multiplication, and pipeline batch stages
// all fan identical, independent work items across GOMAXPROCS
// goroutines; centralizing the loop here keeps the scheduling policy
// (and its determinism guarantees) in one place.
//
// Both helpers block until every item has run, and both are
// result-deterministic as long as fn writes only to per-index slots:
// scheduling order varies, outcomes do not.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n) on up to GOMAXPROCS workers.
// Items are handed out dynamically (work stealing via a shared atomic
// cursor), which balances uneven per-item cost — e.g. CFGs of very
// different sizes during feature extraction.
func For(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForChunked partitions [0, n) into at most GOMAXPROCS contiguous
// ranges and runs fn(lo, hi) for each range on its own worker. Use it
// when per-item cost is uniform and the body benefits from processing a
// contiguous span (e.g. row blocks of a matrix product).
func ForChunked(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
