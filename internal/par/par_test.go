package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, h)
			}
		}
	}
}

func TestForChunkedCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		hits := make([]int32, n)
		ForChunked(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("n=%d: bad range [%d, %d)", n, lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, h)
			}
		}
	}
}

func TestForResultDeterminism(t *testing.T) {
	// Writing to per-index slots must give identical results regardless
	// of scheduling.
	const n = 512
	ref := make([]int, n)
	for i := range ref {
		ref[i] = i * i
	}
	for trial := 0; trial < 10; trial++ {
		out := make([]int, n)
		For(n, func(i int) { out[i] = i * i })
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("trial %d: out[%d] = %d, want %d", trial, i, out[i], ref[i])
			}
		}
	}
}
