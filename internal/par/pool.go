package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// job is one parallel loop in flight: a body, the index space it covers,
// and the hand-out state. Jobs are recycled through jobPool, so a
// steady-state training loop submits thousands of parallel products
// without allocating.
type job struct {
	fn     func(lo, hi int)
	n      int
	grain  int
	cursor atomic.Int64
	wg     sync.WaitGroup
}

// run pulls chunks of at least grain indices off the shared cursor until
// the index space is exhausted. Chunk boundaries depend only on grain,
// never on which worker claims a chunk, so bodies that write per-index
// slots produce identical results under any scheduling.
func (j *job) run() {
	g := int64(j.grain)
	for {
		lo := j.cursor.Add(g) - g
		if lo >= int64(j.n) {
			return
		}
		hi := int(lo) + j.grain
		if hi > j.n {
			hi = j.n
		}
		j.fn(int(lo), hi)
	}
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

// Pool is a persistent worker pool: a fixed set of daemon goroutines
// that execute submitted loop bodies, so hot paths that fan out
// thousands of small parallel loops per second (one training epoch
// issues several matrix products per batch) stop paying goroutine
// spawn cost on every call.
//
// Workers are started lazily on first use and live for the lifetime of
// the pool; there is no Stop. One worker slot belongs to the caller —
// a pool created with `workers` parallelism starts workers-1 helper
// goroutines and the submitting goroutine always executes part of the
// loop itself. Helpers are recruited with non-blocking sends, so a body
// that itself submits to the pool (nested parallelism) can never
// deadlock: when every helper is busy, the inner loop simply runs
// serially on its caller.
type Pool struct {
	helpers int
	submit  chan *job
	start   sync.Once
}

// NewPool creates a pool with the given parallelism (caller plus
// helpers). workers <= 0 means GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{helpers: workers - 1, submit: make(chan *job)}
}

// Workers returns the pool's parallelism (caller plus helpers).
func (p *Pool) Workers() int { return p.helpers + 1 }

func (p *Pool) startWorkers() {
	for i := 0; i < p.helpers; i++ {
		go func() {
			for j := range p.submit {
				j.run()
				j.wg.Done()
			}
		}()
	}
}

// run executes fn over [0, n) in cursor-handed chunks of at least grain
// indices, recruiting at most helpers idle workers and participating
// itself. It blocks until every index has run.
func (p *Pool) run(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	helpers := p.helpers
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	if helpers <= 0 {
		fn(0, n)
		return
	}
	p.start.Do(p.startWorkers)

	j := jobPool.Get().(*job)
	j.fn = fn
	j.n = n
	j.grain = grain
	j.cursor.Store(0)
	for recruited := 0; recruited < helpers; recruited++ {
		j.wg.Add(1)
		select {
		case p.submit <- j:
		default:
			// No idle helper: degrade to fewer workers rather than
			// block (the caller may itself be a pool worker).
			j.wg.Done()
			recruited = helpers
		}
	}
	j.run()
	j.wg.Wait()
	j.fn = nil
	jobPool.Put(j)
}

// For runs fn(i) for every i in [0, n) on the pool. Items are handed
// out one at a time (work stealing via a shared atomic cursor), which
// balances uneven per-item cost — e.g. CFGs of very different sizes
// during feature extraction.
func (p *Pool) For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	chunks := n
	helpers := p.helpers
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	if helpers <= 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.run(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunked partitions [0, n) into contiguous ranges of roughly
// n/Workers() indices and runs fn(lo, hi) for each range. Use it when
// per-item cost is uniform and the body benefits from processing a
// contiguous span (e.g. row blocks of a matrix product).
func (p *Pool) ForChunked(n int, fn func(lo, hi int)) {
	p.ForChunkedGrain(n, 1, fn)
}

// ForChunkedGrain is ForChunked with a floor on the range size: no
// range is smaller than minGrain indices (except the final remainder of
// the index space). With tiny n and many workers this caps the number
// of ranges at ceil(n/minGrain) instead of fanning trivially small
// bodies across every core; when one range covers the whole space the
// body runs serially on the caller as a single fn(0, n) call.
func (p *Pool) ForChunkedGrain(n, minGrain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := p.helpers + 1
	grain := (n + workers - 1) / workers
	if grain < minGrain {
		grain = minGrain
	}
	p.run(n, grain, fn)
}

// shared is the package-level pool behind For/ForChunked/
// ForChunkedGrain, sized to GOMAXPROCS at init.
var shared = NewPool(0)

// Workers returns the parallelism of the shared pool.
func Workers() int { return shared.Workers() }
