package par

import (
	"sync/atomic"
	"testing"
)

func TestForChunkedGrainCoversEveryIndexOnce(t *testing.T) {
	p := NewPool(8)
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		for _, grain := range []int{1, 3, 64, 1000, 5000} {
			hits := make([]int32, n)
			p.ForChunkedGrain(n, grain, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("n=%d grain=%d: bad range [%d, %d)", n, grain, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d grain=%d: index %d ran %d times", n, grain, i, h)
				}
			}
		}
	}
}

// TestForChunkedGrainSerialFallback pins the single-threaded contract:
// when the minimum grain covers the whole index space, the body runs
// exactly once, as fn(0, n), on the calling goroutine — even on a pool
// with many workers.
func TestForChunkedGrainSerialFallback(t *testing.T) {
	p := NewPool(8)
	for _, n := range []int{1, 5, 100} {
		for _, grain := range []int{n, n + 1, 10 * n} {
			var calls atomic.Int32
			var lo0, hi0 atomic.Int32
			p.ForChunkedGrain(n, grain, func(lo, hi int) {
				calls.Add(1)
				lo0.Store(int32(lo))
				hi0.Store(int32(hi))
			})
			if c := calls.Load(); c != 1 {
				t.Fatalf("n=%d grain=%d: body ran %d times, want exactly 1", n, grain, c)
			}
			if lo0.Load() != 0 || int(hi0.Load()) != n {
				t.Fatalf("n=%d grain=%d: got range [%d, %d), want [0, %d)", n, grain, lo0.Load(), hi0.Load(), n)
			}
		}
	}
}

// TestForChunkedGrainRangeFloor checks that no range (except possibly
// the final remainder) is smaller than the requested minimum grain.
func TestForChunkedGrainRangeFloor(t *testing.T) {
	p := NewPool(8)
	const n, grain = 1000, 300
	var small atomic.Int32
	var covered atomic.Int32
	p.ForChunkedGrain(n, grain, func(lo, hi int) {
		if hi-lo < grain && hi != n {
			small.Add(1)
		}
		covered.Add(int32(hi - lo))
	})
	if small.Load() != 0 {
		t.Fatalf("%d non-final ranges smaller than grain %d", small.Load(), grain)
	}
	if covered.Load() != n {
		t.Fatalf("covered %d indices, want %d", covered.Load(), n)
	}
}

// TestNestedSubmissionDoesNotDeadlock exercises a pool body that itself
// submits to the same pool: inner loops must degrade to (partly) serial
// execution rather than wait for workers that are already busy.
func TestNestedSubmissionDoesNotDeadlock(t *testing.T) {
	p := NewPool(4)
	const outer, inner = 16, 64
	hits := make([]int32, outer*inner)
	p.For(outer, func(i int) {
		p.For(inner, func(j int) {
			atomic.AddInt32(&hits[i*inner+j], 1)
		})
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("slot %d ran %d times", i, h)
		}
	}
}

// TestPoolReusedAcrossManyCalls drives the pool through many loops so
// job recycling and the persistent workers get exercised under -race.
func TestPoolReusedAcrossManyCalls(t *testing.T) {
	p := NewPool(4)
	out := make([]int, 256)
	for round := 0; round < 200; round++ {
		p.ForChunked(len(out), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = round + i
			}
		})
		for i := range out {
			if out[i] != round+i {
				t.Fatalf("round %d: out[%d] = %d", round, i, out[i])
			}
		}
	}
}

func TestWorkers(t *testing.T) {
	if w := NewPool(6).Workers(); w != 6 {
		t.Fatalf("Workers() = %d, want 6", w)
	}
	if w := Workers(); w < 1 {
		t.Fatalf("shared Workers() = %d", w)
	}
}
