// Package pca implements principal component analysis for the paper's
// feature-space visualizations (Figs. 8-11): samples are mean-centered
// and projected onto the top-k eigenvectors of the covariance matrix.
//
// Components are found by power iteration with deflation against the
// implicit covariance operator C·v = Xᵀ(X·v)/(n-1), which never
// materializes the d x d covariance matrix — important at the paper's
// d = 1000 feature dimension.
package pca

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"soteria/internal/nn"
)

// PCA is a fitted projection.
type PCA struct {
	// Mean is the training mean, subtracted before projection.
	Mean []float64
	// Components holds k unit-norm principal axes (rows, length d).
	Components [][]float64
	// Explained holds the eigenvalue (variance) of each component.
	Explained []float64
}

// ErrNoData is returned when Fit receives an empty matrix.
var ErrNoData = errors.New("pca: no data")

const (
	maxIters = 1000
	tol      = 1e-10
)

// Fit computes the top-k principal components of x's rows.
func Fit(x *nn.Matrix, k int) (*PCA, error) {
	if x.Rows == 0 || x.Cols == 0 {
		return nil, ErrNoData
	}
	if k <= 0 || k > x.Cols {
		return nil, fmt.Errorf("pca: k=%d out of range [1, %d]", k, x.Cols)
	}
	d := x.Cols
	mean := make([]float64, d)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(x.Rows)
	}
	centered := x.Clone()
	for i := 0; i < centered.Rows; i++ {
		row := centered.Row(i)
		for j := range row {
			row[j] -= mean[j]
		}
	}

	p := &PCA{Mean: mean}
	rng := rand.New(rand.NewSource(1))
	denom := float64(x.Rows - 1)
	if denom < 1 {
		denom = 1
	}
	// covMul computes C·v without forming C.
	covMul := func(v []float64) []float64 {
		xv := make([]float64, centered.Rows)
		for i := 0; i < centered.Rows; i++ {
			row := centered.Row(i)
			var s float64
			for j, rv := range row {
				s += rv * v[j]
			}
			xv[i] = s
		}
		out := make([]float64, d)
		for i := 0; i < centered.Rows; i++ {
			row := centered.Row(i)
			c := xv[i]
			for j, rv := range row {
				out[j] += rv * c
			}
		}
		for j := range out {
			out[j] /= denom
		}
		return out
	}

	for comp := 0; comp < k; comp++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		// Deflate against found components.
		orthogonalize(v, p.Components)
		normalize(v)
		var lambda float64
		for iter := 0; iter < maxIters; iter++ {
			w := covMul(v)
			orthogonalize(w, p.Components)
			newLambda := norm(w)
			if newLambda < 1e-15 {
				// Remaining variance is zero; use an arbitrary
				// orthogonal direction.
				lambda = 0
				break
			}
			for j := range w {
				w[j] /= newLambda
			}
			delta := 0.0
			for j := range w {
				delta += (w[j] - v[j]) * (w[j] - v[j])
			}
			copy(v, w)
			lambda = newLambda
			if delta < tol {
				break
			}
		}
		p.Components = append(p.Components, v)
		p.Explained = append(p.Explained, lambda)
	}
	return p, nil
}

// Transform projects rows of x onto the fitted components, returning an
// (n x k) matrix.
func (p *PCA) Transform(x *nn.Matrix) *nn.Matrix {
	k := len(p.Components)
	out := nn.NewMatrix(x.Rows, k)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for c, comp := range p.Components {
			var s float64
			for j, v := range row {
				s += (v - p.Mean[j]) * comp[j]
			}
			out.Set(i, c, s)
		}
	}
	return out
}

// TransformOne projects a single vector.
func (p *PCA) TransformOne(vec []float64) []float64 {
	return p.Transform(nn.FromRows([][]float64{vec})).Row(0)
}

func orthogonalize(v []float64, basis [][]float64) {
	for _, b := range basis {
		var dot float64
		for j := range v {
			dot += v[j] * b[j]
		}
		for j := range v {
			v[j] -= dot * b[j]
		}
	}
}

func norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	n := norm(v)
	if n == 0 {
		return
	}
	for j := range v {
		v[j] /= n
	}
}
