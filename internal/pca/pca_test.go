package pca

import (
	"math"
	"math/rand"
	"testing"

	"soteria/internal/nn"
)

func TestFitRecoverselongatedAxis(t *testing.T) {
	// Points stretched along (1, 1)/sqrt(2): the first component must
	// align with it (up to sign).
	rng := rand.New(rand.NewSource(1))
	x := nn.NewMatrix(200, 2)
	for i := 0; i < x.Rows; i++ {
		tt := rng.NormFloat64() * 5
		x.Set(i, 0, tt+0.1*rng.NormFloat64())
		x.Set(i, 1, tt+0.1*rng.NormFloat64())
	}
	p, err := Fit(x, 2)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	c0 := p.Components[0]
	want := 1.0 / math.Sqrt(2)
	if math.Abs(math.Abs(c0[0])-want) > 0.02 || math.Abs(math.Abs(c0[1])-want) > 0.02 {
		t.Fatalf("first component = %v, want ±(%v, %v)", c0, want, want)
	}
	if p.Explained[0] < 10*p.Explained[1] {
		t.Fatalf("explained = %v, first should dominate", p.Explained)
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := nn.NewMatrix(50, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	p, err := Fit(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var dot float64
			for k := range p.Components[i] {
				dot += p.Components[i][k] * p.Components[j][k]
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-6 {
				t.Fatalf("components %d,%d dot = %v, want %v", i, j, dot, want)
			}
		}
	}
}

func TestTransformCentersData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := nn.NewMatrix(80, 4)
	for i := range x.Data {
		x.Data[i] = 5 + rng.NormFloat64()
	}
	p, err := Fit(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj := p.Transform(x)
	if proj.Rows != 80 || proj.Cols != 2 {
		t.Fatalf("projection shape %dx%d", proj.Rows, proj.Cols)
	}
	// Projections of training data are mean-centered.
	var m0, m1 float64
	for i := 0; i < proj.Rows; i++ {
		m0 += proj.At(i, 0)
		m1 += proj.At(i, 1)
	}
	if math.Abs(m0/80) > 1e-6 || math.Abs(m1/80) > 1e-6 {
		t.Fatalf("projections not centered: %v, %v", m0/80, m1/80)
	}
}

func TestTransformOneMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := nn.NewMatrix(30, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	p, err := Fit(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	batch := p.Transform(x)
	one := p.TransformOne(x.Row(3))
	for j := range one {
		if math.Abs(one[j]-batch.At(3, j)) > 1e-12 {
			t.Fatal("TransformOne disagrees with batch")
		}
	}
}

func TestSeparatedClustersStaySeparated(t *testing.T) {
	// Two far-apart clusters in 10-D must be separable in the first
	// component.
	rng := rand.New(rand.NewSource(5))
	x := nn.NewMatrix(100, 10)
	for i := 0; i < x.Rows; i++ {
		off := 0.0
		if i%2 == 1 {
			off = 10.0
		}
		for j := 0; j < 10; j++ {
			x.Set(i, j, off+rng.NormFloat64())
		}
	}
	p, err := Fit(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj := p.Transform(x)
	// Check the sign of component-0 separates parity classes.
	sep := 0
	for i := 0; i < proj.Rows; i++ {
		if (proj.At(i, 0) > 0) == (i%2 == 1) {
			sep++
		}
	}
	if sep != 0 && sep != 100 {
		// Allow either orientation, but require full separation.
		t.Fatalf("separation = %d/100, want 0 or 100", sep)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nn.NewMatrix(0, 3), 2); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
	if _, err := Fit(nn.NewMatrix(3, 3), 0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Fit(nn.NewMatrix(3, 3), 4); err == nil {
		t.Fatal("k > d should error")
	}
}

func TestFitConstantData(t *testing.T) {
	x := nn.NewMatrix(10, 3)
	x.Fill(7)
	p, err := Fit(x, 2)
	if err != nil {
		t.Fatalf("Fit on constant data: %v", err)
	}
	for _, e := range p.Explained {
		if e > 1e-9 {
			t.Fatalf("constant data explained variance = %v", p.Explained)
		}
	}
	proj := p.Transform(x)
	if proj.MaxAbs() > 1e-9 {
		t.Fatal("constant data should project to ~0")
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := nn.NewMatrix(40, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	p1, _ := Fit(x, 2)
	p2, _ := Fit(x, 2)
	for c := range p1.Components {
		for j := range p1.Components[c] {
			if p1.Components[c][j] != p2.Components[c][j] {
				t.Fatal("PCA not deterministic")
			}
		}
	}
}
