package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// maxModelBody bounds a POST /models upload. Saved models are a few MB
// at paper scale; 256 MB leaves room without letting one request pin
// the process.
const maxModelBody = 256 << 20

// listResponse is GET /models' JSON body.
type listResponse struct {
	Models []ModelInfo `json:"models"`
	// Shadow is present while a shadow session is running.
	Shadow *ShadowStats `json:"shadow,omitempty"`
}

// AdminHandler returns the registry's admin API, rooted at /models:
//
//	GET  /models                  list versions and shadow stats
//	POST /models                  body = saved model JSON; loads it
//	POST /models/{id}/activate    make id the serving version
//	POST /models/{id}/shadow      shadow id (?every=N, default 1;
//	                              every=0 stops shadowing)
//
// Mount it on the serving mux; it is deliberately separate from
// /analyze so a deployment can keep the admin surface off the public
// listener.
func (r *Registry) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /models", r.handleList)
	mux.HandleFunc("POST /models", r.handleLoad)
	mux.HandleFunc("POST /models/{id}/activate", r.handleActivate)
	mux.HandleFunc("POST /models/{id}/shadow", r.handleShadow)
	return mux
}

func (r *Registry) handleList(w http.ResponseWriter, _ *http.Request) {
	resp := listResponse{Models: r.List()}
	if stats, ok := r.ShadowStats(); ok {
		resp.Shadow = &stats
	}
	writeJSON(w, http.StatusOK, resp)
}

func (r *Registry) handleLoad(w http.ResponseWriter, req *http.Request) {
	id, err := r.LoadSaved(http.MaxBytesReader(w, req.Body, maxModelBody))
	if err != nil {
		http.Error(w, fmt.Sprintf("load model: %v", err), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (r *Registry) handleActivate(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if err := r.Activate(id); err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"active": id})
}

func (r *Registry) handleShadow(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	every := 1
	if q := req.URL.Query().Get("every"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, "every must be a non-negative integer", http.StatusBadRequest)
			return
		}
		every = n
	}
	if err := r.Shadow(id, every); err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	if every == 0 {
		writeJSON(w, http.StatusOK, map[string]string{"shadow": ""})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"shadow": id, "every": every})
}

// statusFor maps registry errors onto admin API statuses: unknown
// versions are the caller's 404, everything else (closed registry,
// self-shadow) a 409 state conflict.
func statusFor(err error) int {
	if errors.Is(err, ErrUnknownVersion) {
		return http.StatusNotFound
	}
	return http.StatusConflict
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
