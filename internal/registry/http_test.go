package registry_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"soteria/internal/registry"
)

// adminFixture builds a registry with p1 loaded+active and returns the
// admin handler plus the two version IDs and p2's saved bytes.
func adminFixture(t *testing.T) (h http.Handler, r *registry.Registry, id1, id2 string, saved2 []byte) {
	t.Helper()
	p1, p2, _ := pipelines(t)
	r = registry.New(registry.Config{})
	t.Cleanup(r.Close)
	id1, err := r.Load(p1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Activate(id1); err != nil {
		t.Fatal(err)
	}
	id2, err = registry.VersionID(p2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p2.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return r.AdminHandler(), r, id1, id2, buf.Bytes()
}

func do(t *testing.T, h http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, bytes.NewReader(body)))
	return rec
}

func TestAdminAPI(t *testing.T) {
	h, r, id1, id2, saved2 := adminFixture(t)

	// POST /models loads the candidate.
	rec := do(t, h, "POST", "/models", saved2)
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST /models = %d: %s", rec.Code, rec.Body)
	}
	var loaded map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &loaded); err != nil {
		t.Fatal(err)
	}
	if loaded["id"] != id2 {
		t.Fatalf("loaded id %q, want %q", loaded["id"], id2)
	}

	// GET /models lists both, active flagged.
	rec = do(t, h, "GET", "/models", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /models = %d", rec.Code)
	}
	var list struct {
		Models []registry.ModelInfo  `json:"models"`
		Shadow *registry.ShadowStats `json:"shadow"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 2 || !list.Models[0].Active || list.Models[0].ID != id1 {
		t.Fatalf("list = %+v, want [%q active, %q]", list.Models, id1, id2)
	}
	if list.Shadow != nil {
		t.Fatal("no shadow session yet, but stats present")
	}

	// Shadow the candidate, then observe it in the listing.
	rec = do(t, h, "POST", "/models/"+id2+"/shadow?every=3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST shadow = %d: %s", rec.Code, rec.Body)
	}
	rec = do(t, h, "GET", "/models", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Shadow == nil || list.Shadow.ID != id2 || list.Shadow.Every != 3 {
		t.Fatalf("shadow stats = %+v, want candidate %q every=3", list.Shadow, id2)
	}

	// Cutover, then verify state flipped.
	rec = do(t, h, "POST", "/models/"+id2+"/activate", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST activate = %d: %s", rec.Code, rec.Body)
	}
	if r.Active() != id2 {
		t.Fatalf("active = %q after cutover, want %q", r.Active(), id2)
	}

	// every=0 after cutover is a no-op disable (session already ended).
	rec = do(t, h, "POST", "/models/"+id1+"/shadow?every=0", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST shadow every=0 = %d: %s", rec.Code, rec.Body)
	}
}

func TestAdminAPIErrors(t *testing.T) {
	h, _, id1, _, _ := adminFixture(t)

	if rec := do(t, h, "POST", "/models/feedfacefeedface/activate", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("activate unknown = %d, want 404", rec.Code)
	}
	if rec := do(t, h, "POST", "/models/feedfacefeedface/shadow", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("shadow unknown = %d, want 404", rec.Code)
	}
	if rec := do(t, h, "POST", "/models/"+id1+"/shadow", nil); rec.Code != http.StatusConflict {
		t.Fatalf("shadow active = %d, want 409", rec.Code)
	}
	if rec := do(t, h, "POST", "/models/"+id1+"/shadow?every=-1", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("shadow every=-1 = %d, want 400", rec.Code)
	}
	if rec := do(t, h, "POST", "/models", []byte("not a model")); rec.Code != http.StatusBadRequest {
		t.Fatalf("POST junk model = %d, want 400", rec.Code)
	}
	if rec := do(t, h, "GET", "/models/"+id1+"/activate", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET activate = %d, want 405", rec.Code)
	}
}
