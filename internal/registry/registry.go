// Package registry is the serving tier's versioned model registry: it
// holds multiple loaded core.Pipeline instances keyed by an ID derived
// from the model fingerprint, serves analyze traffic through an
// atomically swappable active version, and shadow-scores a candidate
// version against a sample of live traffic so a cutover can be gated on
// observed agreement instead of hope.
//
// The hot-swap invariant is that every Decision comes entirely from
// exactly one version. Each version owns its own Batcher, and the
// registry's atomic active pointer only selects which batcher a new
// submission enters; requests already handed to an old version's
// batcher — including cache keys computed at submit time, which pin
// that version's fingerprint — complete on that version. Retired
// batchers stay open, so in-flight batches drain naturally and
// reactivating a previous version (rollback) is another pointer swap,
// not a rebuild.
//
// The fingerprint/cache interplay makes swaps cache-safe without any
// flush: store.Cache keys embed the model fingerprint, so each
// version writes and reads a disjoint keyspace of the shared cache,
// and an old version's entries simply age out of the LRU once traffic
// stops refreshing them.
package registry

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"soteria/internal/core"
	"soteria/internal/disasm"
	"soteria/internal/obs"
	"soteria/internal/store"
)

// shadowAlpha is the decay of the shadow agreement and RE rolling
// means: fast enough that a few hundred mirrored requests dominate the
// statistic, slow enough that one disagreement cannot flip a gate.
const shadowAlpha = 0.05

// defaultShadowQueue bounds the shadow mirror queue when
// Config.ShadowQueue is unset. Mirroring is strictly best-effort: a
// full queue drops the sample (counted) rather than ever delaying the
// serving path.
const defaultShadowQueue = 64

// ErrNoActive is returned by Submit before any version was activated.
var ErrNoActive = errors.New("registry: no active model version")

// ErrClosed is returned by mutating calls after Close.
var ErrClosed = errors.New("registry: closed")

// ErrUnknownVersion is wrapped by Activate/Shadow when id names no
// registered version.
var ErrUnknownVersion = errors.New("registry: unknown version")

// Config configures a Registry.
type Config struct {
	// Batcher tunes each version's micro-batching front door; zero
	// values take the core defaults.
	Batcher core.BatcherConfig
	// Cache, when non-nil, is attached to every loaded version. Keys
	// embed each version's fingerprint, so versions share the cache
	// without ever sharing entries.
	Cache *store.Cache
	// Obs receives the registry's metrics and, on activation, each
	// version's pipeline/batcher metrics. Shadow versions stay
	// uninstrumented so a candidate's scoring never pollutes the live
	// drift metrics. Nil disables all instrumentation.
	Obs *obs.Registry
	// ShadowQueue bounds the mirror queue feeding the shadow scorer
	// (default 64); samples arriving at a full queue are dropped.
	ShadowQueue int
}

// version is one loaded model: the pipeline, its ID, and the Batcher
// it serves through once activated.
type version struct {
	id   string
	pipe *core.Pipeline
	// bat is created on first activation (never for shadow-only
	// versions) and stays open after the version is swapped out, so
	// queued requests drain on the version that keyed them.
	bat *core.Batcher
}

// shadowState is one shadow-scoring session: the candidate version,
// the sampling ratio, and the session's rolling statistics. Replaced
// wholesale when shadowing is (re)configured, so a new session never
// inherits a previous candidate's statistics.
type shadowState struct {
	ver   *version
	every uint64
	n     atomic.Uint64 // submissions seen, for deterministic sampling
	cmp   atomic.Uint64 // comparisons completed
	agree *obs.EWMA     // rolling verdict agreement in [0, 1]
	re    *obs.EWMA     // rolling shadow reconstruction error
}

// shadowJob carries one mirrored request to the shadow scorer.
type shadowJob struct {
	st     *shadowState
	cfg    *disasm.CFG
	salt   int64
	active *core.Decision
}

// registryObs is the registry's metric set.
type registryObs struct {
	activeVersion *obs.Info    // registry.active_version: the live model ID
	swaps         *obs.Counter // registry.swaps: activations that changed the pointer
	versions      *obs.Gauge   // registry.versions: loaded version count
	agreement     *obs.Gauge   // registry.shadow_agreement: rolling verdict agreement
	driftSigma    *obs.Gauge   // registry.shadow_drift_sigma: shadow RE drift in sigmas
	compared      *obs.Counter // registry.shadow_compared: mirrored requests scored
	dropped       *obs.Counter // registry.shadow_dropped: mirrors lost to a full queue
	errors        *obs.Counter // registry.shadow_errors: shadow scoring failures
}

// Registry holds the loaded model versions and routes analyze traffic
// to the active one. Safe for concurrent use.
type Registry struct {
	cfg Config
	met registryObs

	// mu guards the version table and all state transitions (load,
	// activate, shadow, close). The serving path never takes it: Submit
	// reads the active and shadow pointers atomically.
	mu       sync.Mutex
	versions map[string]*version
	order    []string // load order, for stable List output
	closed   bool

	active atomic.Pointer[version]
	shadow atomic.Pointer[shadowState]

	jobs chan shadowJob
	// quiesce is the Activate/scorer handshake: receiving a reply
	// channel and closing it proves the scorer is between jobs, so a
	// pipeline about to be instrumented is not mid-Analyze.
	quiesce chan chan struct{}
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
}

// New returns an empty registry and starts its shadow scorer. Close it
// to release the scorer and every version's batcher.
func New(cfg Config) *Registry {
	q := cfg.ShadowQueue
	if q <= 0 {
		q = defaultShadowQueue
	}
	r := &Registry{
		cfg:      cfg,
		versions: make(map[string]*version),
		jobs:     make(chan shadowJob, q),
		quiesce:  make(chan chan struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if o := cfg.Obs; o != nil {
		r.met = registryObs{
			activeVersion: o.Info("registry.active_version"),
			swaps:         o.Counter("registry.swaps"),
			versions:      o.Gauge("registry.versions"),
			agreement:     o.Gauge("registry.shadow_agreement"),
			driftSigma:    o.Gauge("registry.shadow_drift_sigma"),
			compared:      o.Counter("registry.shadow_compared"),
			dropped:       o.Counter("registry.shadow_dropped"),
			errors:        o.Counter("registry.shadow_errors"),
		}
	}
	go r.scoreShadows()
	return r
}

// VersionID derives the registry ID of a pipeline: the first 16 hex
// digits of its model fingerprint.
func VersionID(p *core.Pipeline) (string, error) {
	fp, err := p.Fingerprint()
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(fp[:8]), nil
}

// Load registers a trained pipeline and returns its version ID.
// Loading is idempotent: a pipeline whose fingerprint is already
// registered returns the existing ID (the registered instance keeps
// serving). The shared cache, when configured, is attached here —
// before the version can see traffic — because AttachCache is not
// swap-safe once Analyze calls are in flight.
func (r *Registry) Load(p *core.Pipeline) (string, error) {
	id, err := VersionID(p)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return "", ErrClosed
	}
	if _, ok := r.versions[id]; ok {
		return id, nil
	}
	if r.cfg.Cache != nil {
		if err := p.AttachCache(r.cfg.Cache); err != nil {
			return "", err
		}
	}
	r.versions[id] = &version{id: id, pipe: p}
	r.order = append(r.order, id)
	r.met.versions.Set(float64(len(r.versions)))
	return id, nil
}

// LoadSaved reads a Save-serialized model and registers it.
func (r *Registry) LoadSaved(rd io.Reader) (string, error) {
	p, err := core.Load(rd)
	if err != nil {
		return "", err
	}
	return r.Load(p)
}

// Activate makes version id the one serving new submissions. The swap
// is a single atomic pointer store: submissions that already chose the
// previous version's batcher complete there, and everything after the
// swap enters the new version's. First activation instruments the
// pipeline and starts its batcher; reactivating a version that was
// swapped out reuses its still-open batcher. Activating the version
// being shadowed ends the shadow session (it would be comparing the
// active model to itself).
func (r *Registry) Activate(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	v, ok := r.versions[id]
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownVersion, id)
	}
	if s := r.shadow.Load(); s != nil && s.ver == v {
		r.shadow.Store(nil)
	}
	if v.bat == nil {
		// Instrument mutates the pipeline, and the shadow scorer may be
		// mid-Analyze on it (v is typically the candidate being cut
		// over). The session is cleared above, so after one handshake
		// the scorer can never touch v again: in-flight comparison
		// finished, and queued jobs fail the stale-session check before
		// reaching the pipeline.
		r.quiesceScorer()
		v.pipe.Instrument(r.cfg.Obs)
		v.bat = core.NewBatcher(v.pipe, r.cfg.Batcher)
	}
	prev := r.active.Swap(v)
	if prev == v {
		return nil
	}
	if prev != nil {
		r.met.swaps.Inc()
	}
	r.met.activeVersion.Set(v.id)
	return nil
}

// quiesceScorer blocks until the shadow scorer is idle between jobs
// (or already stopped). Callers must hold r.mu, which keeps a new
// shadow session from starting while the handshake is in flight.
func (r *Registry) quiesceScorer() {
	q := make(chan struct{})
	select {
	case r.quiesce <- q:
		<-q
	case <-r.done:
	}
}

// Shadow starts shadow-scoring version id: every every-th submission's
// input is mirrored to it after the active version answers, and the
// candidate's verdict agreement and RE drift accumulate in the shadow
// stats. every <= 0 stops shadowing. The active version cannot be its
// own shadow. Restarting a session (same or different candidate)
// resets the statistics.
func (r *Registry) Shadow(id string, every int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if every <= 0 {
		r.shadow.Store(nil)
		return nil
	}
	v, ok := r.versions[id]
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownVersion, id)
	}
	if r.active.Load() == v {
		return fmt.Errorf("registry: version %q is active; shadowing it would compare the model to itself", id)
	}
	r.shadow.Store(&shadowState{
		ver:   v,
		every: uint64(every),
		agree: obs.NewEWMA(shadowAlpha),
		re:    obs.NewEWMA(shadowAlpha),
	})
	return nil
}

// Active returns the serving version's ID ("" before any activation).
func (r *Registry) Active() string {
	if v := r.active.Load(); v != nil {
		return v.id
	}
	return ""
}

// Submit analyzes one CFG on the active version and blocks until its
// decision is ready. See SubmitCtx.
func (r *Registry) Submit(c *disasm.CFG, salt int64) (*core.Decision, error) {
	return r.SubmitCtx(context.Background(), c, salt)
}

// SubmitCtx analyzes one CFG through the active version's batcher.
// The version is chosen exactly once, by one atomic load: whichever
// version answers computed the cache key, ran the scoring, and owns
// the decision — a concurrent Activate affects only later submissions.
// Successful decisions are sampled into the shadow mirror, which never
// blocks or fails the serving path.
func (r *Registry) SubmitCtx(ctx context.Context, c *disasm.CFG, salt int64) (*core.Decision, error) {
	v := r.active.Load()
	if v == nil {
		return nil, ErrNoActive
	}
	dec, err := v.bat.SubmitCtx(ctx, c, salt)
	if err != nil {
		return nil, err
	}
	r.mirror(c, salt, dec)
	return dec, nil
}

// mirror enqueues a sampled request for shadow scoring. Sampling is a
// deterministic modulus of the session's submission counter — no
// clocks, no randomness — so a given traffic sequence always mirrors
// the same requests. A full queue drops the sample and counts it.
func (r *Registry) mirror(c *disasm.CFG, salt int64, dec *core.Decision) {
	s := r.shadow.Load()
	if s == nil {
		return
	}
	if (s.n.Add(1)-1)%s.every != 0 {
		return
	}
	select {
	case r.jobs <- shadowJob{st: s, cfg: c, salt: salt, active: dec}:
	default:
		r.met.dropped.Inc()
	}
}

// scoreShadows is the registry's single shadow scorer: it runs each
// mirrored request through the candidate pipeline directly (no
// batcher — the candidate is not serving) and folds the comparison
// into the session statistics. One goroutine, so a slow candidate
// backs up the bounded queue and sheds mirrors instead of growing
// unbounded concurrent scoring.
func (r *Registry) scoreShadows() {
	defer close(r.done)
	for {
		select {
		case j := <-r.jobs:
			r.compare(j)
		case q := <-r.quiesce:
			close(q)
		case <-r.stop:
			return
		}
	}
}

// compare scores one mirrored request on the candidate and updates the
// session stats and gauges.
func (r *Registry) compare(j shadowJob) {
	// A job from a replaced session is dropped unscored: its candidate
	// may have been activated (and instrumented) since it was queued,
	// and its statistics no longer feed anything.
	if r.shadow.Load() != j.st {
		r.met.dropped.Inc()
		return
	}
	d, err := j.st.ver.pipe.Analyze(j.cfg, j.salt)
	if err != nil {
		r.met.errors.Inc()
		return
	}
	agree := 0.0
	if d.Adversarial == j.active.Adversarial && d.Class == j.active.Class {
		agree = 1.0
	}
	j.st.agree.Observe(agree)
	j.st.re.Observe(d.RE)
	j.st.cmp.Add(1)
	r.met.agreement.Set(j.st.agree.Value())
	r.met.driftSigma.Set(driftSigma(j.st))
	r.met.compared.Inc()
}

// driftSigma expresses the shadow RE rolling mean in units of the
// candidate's own training calibration — the registry analogue of the
// detector's re_drift_sigma: how far live traffic sits from where the
// candidate expects clean traffic to sit.
func driftSigma(s *shadowState) float64 {
	mu, sigma := s.ver.pipe.Detector.Calibration()
	if sigma <= 0 {
		return 0
	}
	return (s.re.Value() - mu) / sigma
}

// ShadowStats is a point-in-time snapshot of the current shadow
// session. Cutover gates read it (or the equivalent registry.shadow_*
// metrics): activate when Compared is large enough and Agreement and
// DriftSigma sit where the operator demands.
type ShadowStats struct {
	// ID is the candidate version being shadowed.
	ID string `json:"id"`
	// Every is the sampling ratio: one mirror per Every submissions.
	Every int `json:"every"`
	// Compared counts mirrored requests scored so far this session.
	Compared uint64 `json:"compared"`
	// Agreement is the rolling fraction of mirrored requests where the
	// candidate's verdict (adversarial flag and class) matched the
	// active model's.
	Agreement float64 `json:"agreement"`
	// REMean is the rolling mean reconstruction error the candidate
	// assigns to live traffic.
	REMean float64 `json:"re_mean"`
	// DriftSigma is REMean in units of the candidate's calibration.
	DriftSigma float64 `json:"drift_sigma"`
}

// ShadowStats returns the current session's statistics; ok is false
// when nothing is being shadowed.
func (r *Registry) ShadowStats() (stats ShadowStats, ok bool) {
	s := r.shadow.Load()
	if s == nil {
		return ShadowStats{}, false
	}
	return ShadowStats{
		ID:         s.ver.id,
		Every:      int(s.every),
		Compared:   s.cmp.Load(),
		Agreement:  s.agree.Value(),
		REMean:     s.re.Value(),
		DriftSigma: driftSigma(s),
	}, true
}

// ModelInfo describes one registered version.
type ModelInfo struct {
	ID string `json:"id"`
	// Active marks the version serving new submissions.
	Active bool `json:"active"`
	// Shadow marks the version being shadow-scored.
	Shadow bool `json:"shadow"`
	// Ready marks a version whose batcher exists (it has been active at
	// least once, so reactivating it is instant).
	Ready bool `json:"ready"`
}

// List returns every registered version in load order.
func (r *Registry) List() []ModelInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	active := r.active.Load()
	shadow := r.shadow.Load()
	out := make([]ModelInfo, 0, len(r.order))
	for _, id := range r.order {
		v := r.versions[id]
		out = append(out, ModelInfo{
			ID:     id,
			Active: v == active,
			Shadow: shadow != nil && shadow.ver == v,
			Ready:  v.bat != nil,
		})
	}
	return out
}

// Close stops the shadow scorer and closes every version's batcher
// (each drains its queued requests first). Submissions racing Close
// complete or return core.ErrBatcherClosed; later ones always error.
// Idempotent.
func (r *Registry) Close() {
	r.once.Do(func() {
		r.mu.Lock()
		r.closed = true
		vs := make([]*version, 0, len(r.versions))
		for _, v := range r.versions {
			vs = append(vs, v)
		}
		r.mu.Unlock()
		for _, v := range vs {
			if v.bat != nil {
				v.bat.Close()
			}
		}
		close(r.stop)
	})
	<-r.done
}
