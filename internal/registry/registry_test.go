package registry_test

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"soteria/internal/core"
	"soteria/internal/malgen"
	"soteria/internal/obs"
	"soteria/internal/registry"
	"soteria/internal/store"
)

// The fixture trains two tiny distinct pipelines once per test binary
// (training dominates test time) and shares them read-only-ish across
// tests: registries instrument them idempotently and attach caches
// only when a test configures one.
var (
	fixOnce sync.Once
	fix     struct {
		p1, p2  *core.Pipeline
		samples []*malgen.Sample
		err     error
	}
)

func pipelines(t *testing.T) (*core.Pipeline, *core.Pipeline, []*malgen.Sample) {
	t.Helper()
	if testing.Short() {
		t.Skip("trains pipelines")
	}
	fixOnce.Do(func() {
		gen := malgen.NewGenerator(malgen.Config{Seed: 7})
		for _, c := range malgen.Classes {
			for i := 0; i < 3; i++ {
				s, err := gen.Sample(c)
				if err != nil {
					fix.err = err
					return
				}
				fix.samples = append(fix.samples, s)
			}
		}
		opts := core.DefaultOptions()
		opts.Features.WalkCount = 3
		opts.DetectorEpochs = 6
		opts.ClassifierEpochs = 6
		opts.Filters = 4
		opts.DenseUnits = 16
		opts.Seed = 7
		if fix.p1, fix.err = core.Train(fix.samples, opts); fix.err != nil {
			return
		}
		// A different training seed gives genuinely different weights —
		// and therefore a different fingerprint and version ID.
		opts.Seed = 8
		fix.p2, fix.err = core.Train(fix.samples, opts)
	})
	if fix.err != nil {
		t.Fatal(fix.err)
	}
	return fix.p1, fix.p2, fix.samples
}

func TestLoadActivateSubmit(t *testing.T) {
	p1, p2, samples := pipelines(t)
	r := registry.New(registry.Config{})
	defer r.Close()

	if _, err := r.Submit(samples[0].CFG, 0); err != registry.ErrNoActive {
		t.Fatalf("Submit before activation: %v, want ErrNoActive", err)
	}

	id1, err := r.Load(p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(id1) != 16 {
		t.Fatalf("version ID %q, want 16 hex digits", id1)
	}
	if again, err := r.Load(p1); err != nil || again != id1 {
		t.Fatalf("re-Load = (%q, %v), want idempotent (%q, nil)", again, err, id1)
	}
	id2, err := r.Load(p2)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id1 {
		t.Fatal("distinct models share a version ID")
	}

	if err := r.Activate(id1); err != nil {
		t.Fatal(err)
	}
	if r.Active() != id1 {
		t.Fatalf("Active() = %q, want %q", r.Active(), id1)
	}

	// Registry decisions are bit-identical to direct Analyze calls.
	for i, s := range samples[:4] {
		want, err := p1.Analyze(s.CFG, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Submit(s.CFG, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if *got != *want {
			t.Fatalf("sample %d: registry %+v != direct %+v", i, got, want)
		}
	}

	list := r.List()
	if len(list) != 2 {
		t.Fatalf("List() has %d entries, want 2", len(list))
	}
	if list[0].ID != id1 || !list[0].Active || !list[0].Ready {
		t.Fatalf("list[0] = %+v, want active ready %q", list[0], id1)
	}
	if list[1].ID != id2 || list[1].Active || list[1].Ready {
		t.Fatalf("list[1] = %+v, want standby %q", list[1], id2)
	}

	if err := r.Activate("feedfacefeedface"); err == nil {
		t.Fatal("activating an unknown version should error")
	}
}

// TestSwapUnderLoad is the hot-swap invariant pin, run under -race by
// the verify suite: concurrent submitters hammer the registry while
// the active version flips back and forth. Every decision must be
// bit-identical to one of the two versions' direct Analyze output for
// that (sample, salt) — a torn read mixing versions would produce a
// decision neither model makes — and no request may error during any
// swap.
func TestSwapUnderLoad(t *testing.T) {
	p1, p2, samples := pipelines(t)
	r := registry.New(registry.Config{})
	defer r.Close()
	id1, err := r.Load(p1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := r.Load(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Activate(id1); err != nil {
		t.Fatal(err)
	}

	// Direct per-version ground truth, computed before the storm.
	type pair struct{ d1, d2 core.Decision }
	truth := make([]pair, len(samples))
	for i, s := range samples {
		d1, err := p1.Analyze(s.CFG, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		d2, err := p2.Analyze(s.CFG, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		truth[i] = pair{*d1, *d2}
	}

	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < perWorker; i++ {
				n := (w + i) % len(samples)
				var dec *core.Decision
				var err error
				if i%2 == 0 {
					dec, err = r.Submit(samples[n].CFG, int64(n))
				} else {
					dec, err = r.SubmitCtx(ctx, samples[n].CFG, int64(n))
				}
				if err != nil {
					errc <- err
					return
				}
				if *dec != truth[n].d1 && *dec != truth[n].d2 {
					t.Errorf("sample %d: decision %+v matches neither version (%+v / %+v)",
						n, dec, truth[n].d1, truth[n].d2)
					return
				}
			}
		}(w)
	}

	// Flip the active version while the submitters run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		ids := [2]string{id2, id1}
		for i := 0; i < 12; i++ {
			if err := r.Activate(ids[i%2]); err != nil {
				t.Errorf("Activate during load: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	<-done
	close(errc)
	for err := range errc {
		t.Fatalf("request failed during swap: %v", err)
	}
}

func TestShadowScoringAndCutover(t *testing.T) {
	p1, p2, samples := pipelines(t)
	o := obs.NewRegistry()
	r := registry.New(registry.Config{Obs: o})
	defer r.Close()
	id1, _ := r.Load(p1)
	id2, _ := r.Load(p2)
	if err := r.Activate(id1); err != nil {
		t.Fatal(err)
	}

	if err := r.Shadow(id1, 1); err == nil {
		t.Fatal("shadowing the active version should error")
	}
	if err := r.Shadow("feedfacefeedface", 1); err == nil {
		t.Fatal("shadowing an unknown version should error")
	}
	if err := r.Shadow(id2, 1); err != nil {
		t.Fatal(err)
	}

	// Drive traffic until the async scorer has compared a few mirrors.
	deadline := time.Now().Add(10 * time.Second)
	var stats registry.ShadowStats
	for {
		for i, s := range samples {
			if _, err := r.Submit(s.CFG, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		var ok bool
		stats, ok = r.ShadowStats()
		if !ok {
			t.Fatal("shadow session vanished")
		}
		if stats.Compared >= uint64(len(samples)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shadow scorer compared only %d mirrors", stats.Compared)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if stats.ID != id2 || stats.Every != 1 {
		t.Fatalf("stats identity = %+v, want candidate %q every=1", stats, id2)
	}
	if stats.Agreement < 0 || stats.Agreement > 1 {
		t.Fatalf("agreement %v outside [0,1]", stats.Agreement)
	}
	if stats.REMean <= 0 {
		t.Fatalf("shadow RE mean %v, want > 0", stats.REMean)
	}

	// The gating metrics are published under registry.* names.
	snap := o.Snapshot()
	if got := snap["registry.active_version"]; got != id1 {
		t.Fatalf("registry.active_version = %v, want %q", got, id1)
	}
	if snap["registry.shadow_compared"].(uint64) == 0 {
		t.Fatal("registry.shadow_compared not populated")
	}
	for _, name := range []string{"registry.shadow_agreement", "registry.shadow_drift_sigma", "registry.versions", "registry.swaps"} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("metric %q missing from snapshot", name)
		}
	}

	// Cutover: activating the shadowed candidate ends the session and
	// counts a swap.
	if err := r.Activate(id2); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.ShadowStats(); ok {
		t.Fatal("shadow session should end when its candidate activates")
	}
	snap = o.Snapshot()
	if got := snap["registry.active_version"]; got != id2 {
		t.Fatalf("registry.active_version = %v after cutover, want %q", got, id2)
	}
	if snap["registry.swaps"].(uint64) != 1 {
		t.Fatalf("registry.swaps = %v, want 1", snap["registry.swaps"])
	}

	// every=0 disables an ongoing session.
	if err := r.Shadow(id1, 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Shadow(id1, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.ShadowStats(); ok {
		t.Fatal("Shadow(id, 0) should stop shadowing")
	}
}

// TestSharedCacheDisjointKeyspaces pins the fingerprint/cache
// interplay: two versions sharing one cache never serve each other's
// entries, because keys embed each version's fingerprint.
func TestSharedCacheDisjointKeyspaces(t *testing.T) {
	p1, p2, samples := pipelines(t)
	cache, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	// The fixture pipelines are shared; detach the cache on exit so
	// later tests see the uncached fixture they expect.
	defer func() {
		_ = p1.AttachCache(nil)
		_ = p2.AttachCache(nil)
	}()
	r := registry.New(registry.Config{Cache: cache})
	defer r.Close()
	id1, _ := r.Load(p1)
	id2, _ := r.Load(p2)
	if err := r.Activate(id1); err != nil {
		t.Fatal(err)
	}
	d1, err := r.Submit(samples[0].CFG, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Activate(id2); err != nil {
		t.Fatal(err)
	}
	d2, err := r.Submit(samples[0].CFG, 0)
	if err != nil {
		t.Fatal(err)
	}
	want1, _ := p1.Analyze(samples[0].CFG, 0)
	want2, _ := p2.Analyze(samples[0].CFG, 0)
	if *d1 != *want1 {
		t.Fatalf("v1 decision %+v != direct %+v", d1, want1)
	}
	if *d2 != *want2 {
		t.Fatalf("v2 decision %+v != direct %+v (cross-version cache hit?)", d2, want2)
	}
}

func TestLoadSavedRoundTrip(t *testing.T) {
	p1, _, samples := pipelines(t)
	var buf bytes.Buffer
	if err := p1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r := registry.New(registry.Config{})
	defer r.Close()
	id, err := r.LoadSaved(&buf)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := registry.VersionID(p1)
	if err != nil {
		t.Fatal(err)
	}
	if id != direct {
		t.Fatalf("LoadSaved ID %q != source pipeline ID %q", id, direct)
	}
	if err := r.Activate(id); err != nil {
		t.Fatal(err)
	}
	want, _ := p1.Analyze(samples[1].CFG, 1)
	got, err := r.Submit(samples[1].CFG, 1)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("loaded-version decision %+v != source %+v", got, want)
	}
}

func TestCloseRejectsFurtherWork(t *testing.T) {
	p1, _, samples := pipelines(t)
	r := registry.New(registry.Config{})
	id, _ := r.Load(p1)
	if err := r.Activate(id); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if _, err := r.Submit(samples[0].CFG, 0); err == nil {
		t.Fatal("Submit after Close should error")
	}
	if _, err := r.Load(p1); err != registry.ErrClosed {
		t.Fatalf("Load after Close: %v, want ErrClosed", err)
	}
	if err := r.Activate(id); err != registry.ErrClosed {
		t.Fatalf("Activate after Close: %v, want ErrClosed", err)
	}
	if err := r.Shadow(id, 1); err != registry.ErrClosed {
		t.Fatalf("Shadow after Close: %v, want ErrClosed", err)
	}
}
