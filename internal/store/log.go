package store

// The record log. Format:
//
//	header   "SOTC" | u32 version            (8 bytes)
//	record   u32 len | u32 crc32(payload) | payload
//	payload  kind u8 | content [32] | salt u64 | model [32] | body
//	body     verdict:  flag u8 | u64 float bits of RE | u32 class
//	         features: u32 count | count × u64 float bits
//
// All integers are little-endian. The CRC plus the length prefix makes
// a torn tail self-evident on replay: the first record that fails the
// length or checksum ends the replay and the file is truncated back to
// the end of the last intact record.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

const (
	logName    = "cache.log"
	logMagic   = "SOTC"
	logVersion = 1

	maxRecordLen = 64 << 20 // sanity bound on one record's payload
)

// openLog replays (or creates) the log at path and leaves c.f open for
// appending at the end of the last intact record.
func (c *Cache) openLog(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	good, err := c.replay(f)
	if err != nil {
		_ = f.Close()
		return err
	}
	// Drop any torn or corrupt tail so appends land after intact data.
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		if err := f.Truncate(good); err != nil {
			_ = f.Close()
			return fmt.Errorf("store: truncate corrupt tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		_ = f.Close()
		return fmt.Errorf("store: %w", err)
	}
	c.f = f
	c.logBytes = good
	return nil
}

// replay scans the log, inserting every intact record into the index
// (later records win, and the LRU order follows log order so the
// oldest writes evict first). It returns the offset just past the last
// intact record. A fresh/empty file gets its header written here.
func (c *Cache) replay(f *os.File) (int64, error) {
	var hdr [8]byte
	n, err := io.ReadFull(f, hdr[:])
	if err == io.EOF && n == 0 {
		binary.LittleEndian.PutUint32(hdr[4:], logVersion)
		copy(hdr[:4], logMagic)
		if _, err := f.Write(hdr[:]); err != nil {
			return 0, fmt.Errorf("store: write header: %w", err)
		}
		return int64(len(hdr)), nil
	}
	if err != nil || string(hdr[:4]) != logMagic || binary.LittleEndian.Uint32(hdr[4:]) != logVersion {
		return 0, fmt.Errorf("store: %s is not a cache log", f.Name())
	}
	good := int64(len(hdr))
	var frame [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			return good, nil // clean EOF or torn frame: stop here
		}
		length := binary.LittleEndian.Uint32(frame[:4])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if length == 0 || length > maxRecordLen {
			return good, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return good, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return good, nil
		}
		e, ok := decodeRecord(payload)
		if !ok {
			return good, nil
		}
		c.insert(e, false)
		good += int64(len(frame)) + int64(length)
	}
}

// appendLocked encodes e and appends it to the log. Caller holds c.mu.
// On write failure the log is abandoned (sticky ioErr, cache becomes
// memory-only) rather than risking a half-written interior record.
func (c *Cache) appendLocked(e *entry) {
	c.buf = appendRecord(c.buf[:0], e)
	if _, err := c.f.Write(c.buf); err != nil {
		c.ioErr = fmt.Errorf("store: append: %w", err)
		_ = c.f.Close()
		c.f = nil
		return
	}
	c.logBytes += int64(len(c.buf))
	c.maybeRotateLocked()
}

// rotateThreshold is the minimum log size before compaction is
// considered; below it rewriting is not worth the I/O.
const rotateThreshold = 1 << 20

// maybeRotateLocked compacts the log when more than half of it is dead
// weight (overwritten or evicted records). The live entries are
// written oldest-first to a temp file which atomically replaces the
// log, so a crash at any point leaves either the old or the new log
// intact. Caller holds c.mu.
func (c *Cache) maybeRotateLocked() {
	if c.logBytes < rotateThreshold || c.logBytes < 2*c.live {
		return
	}
	path := c.f.Name()
	tmp, err := os.CreateTemp(c.dir, logName+".tmp*")
	if err != nil {
		c.ioErr = fmt.Errorf("store: rotate: %w", err)
		return
	}
	written, err := c.writeSnapshot(tmp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		_ = os.Remove(tmp.Name())
		c.ioErr = fmt.Errorf("store: rotate: %w", err)
		_ = c.f.Close()
		c.f = nil
		return
	}
	// The old handle now points at an unlinked inode; reopen the new log
	// for appending.
	if err := c.f.Close(); err != nil {
		c.ioErr = fmt.Errorf("store: rotate: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		c.ioErr = fmt.Errorf("store: rotate: %w", err)
		c.f = nil
		return
	}
	c.f = f
	c.logBytes = written
}

// writeSnapshot writes the header plus every live entry, LRU-oldest
// first so a replay reconstructs the same recency order.
func (c *Cache) writeSnapshot(w io.Writer) (int64, error) {
	var hdr [8]byte
	copy(hdr[:4], logMagic)
	binary.LittleEndian.PutUint32(hdr[4:], logVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	total := int64(len(hdr))
	for e := c.tail; e != nil; e = e.prev {
		c.buf = appendRecord(c.buf[:0], e)
		if _, err := w.Write(c.buf); err != nil {
			return 0, err
		}
		total += int64(len(c.buf))
	}
	return total, nil
}

// appendRecord encodes e as one framed record into dst.
func appendRecord(dst []byte, e *entry) []byte {
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame placeholder
	body := len(dst)
	dst = append(dst, e.ik.kind)
	dst = append(dst, e.ik.key.Content[:]...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(e.ik.key.Salt))
	dst = append(dst, e.ik.key.Model[:]...)
	switch e.ik.kind {
	case kindVerdict:
		flag := byte(0)
		if e.verdict.Adversarial {
			flag = 1
		}
		dst = append(dst, flag)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.verdict.RE))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.verdict.Class))
	case kindFeatures:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.feats)))
		for _, v := range e.feats {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	payload := dst[body:]
	binary.LittleEndian.PutUint32(dst[body-8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[body-4:], crc32.ChecksumIEEE(payload))
	return dst
}

// decodeRecord parses one payload back into an entry.
func decodeRecord(p []byte) (*entry, bool) {
	const keyLen = 1 + 32 + 8 + 32
	if len(p) < keyLen {
		return nil, false
	}
	e := &entry{}
	e.ik.kind = p[0]
	copy(e.ik.key.Content[:], p[1:33])
	e.ik.key.Salt = int64(binary.LittleEndian.Uint64(p[33:41]))
	copy(e.ik.key.Model[:], p[41:73])
	body := p[keyLen:]
	switch e.ik.kind {
	case kindVerdict:
		if len(body) != 1+8+4 {
			return nil, false
		}
		e.verdict.Adversarial = body[0] == 1
		e.verdict.RE = math.Float64frombits(binary.LittleEndian.Uint64(body[1:9]))
		e.verdict.Class = int32(binary.LittleEndian.Uint32(body[9:13]))
		e.size = entryOverhead
	case kindFeatures:
		if len(body) < 4 {
			return nil, false
		}
		n := binary.LittleEndian.Uint32(body[:4])
		if len(body) != 4+8*int(n) {
			return nil, false
		}
		e.feats = make([]float64, n)
		for i := range e.feats {
			e.feats[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[4+8*i:]))
		}
		e.size = entryOverhead + 8*int64(n)
	default:
		return nil, false
	}
	return e, true
}
