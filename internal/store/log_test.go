package store

import (
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T, dir string, max int64) *Cache {
	t.Helper()
	c, err := Open(Config{Dir: dir, MaxBytes: max})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func closeCache(t *testing.T, c *Cache) {
	t.Helper()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartReplay(t *testing.T) {
	dir := t.TempDir()
	c := openTemp(t, dir, 0)
	want := Verdict{Adversarial: true, RE: 3.25, Class: 1}
	feats := []float64{0.5, -1, 42}
	c.PutVerdict(testKey(1), want)
	c.PutFeatures(testKey(1), feats)
	c.PutVerdict(testKey(2), Verdict{Class: 2})
	closeCache(t, c)

	// A fresh Open over the same dir must serve everything as hits.
	c2 := openTemp(t, dir, 0)
	defer closeCache(t, c2)
	if c2.Len() != 3 {
		t.Fatalf("replayed Len = %d, want 3", c2.Len())
	}
	got, ok := c2.Verdict(testKey(1))
	if !ok || got != want {
		t.Fatalf("replayed verdict = %+v, %v", got, ok)
	}
	f, ok := c2.Features(testKey(1))
	if !ok || len(f) != 3 || f[0] != 0.5 || f[1] != -1 || f[2] != 42 {
		t.Fatalf("replayed features = %v, %v", f, ok)
	}
	if _, ok := c2.Verdict(testKey(2)); !ok {
		t.Fatal("second key lost across restart")
	}
}

func TestLatestWriteWinsOnReplay(t *testing.T) {
	dir := t.TempDir()
	c := openTemp(t, dir, 0)
	c.PutVerdict(testKey(1), Verdict{Class: 1})
	c.PutVerdict(testKey(1), Verdict{Class: 9})
	closeCache(t, c)

	c2 := openTemp(t, dir, 0)
	defer closeCache(t, c2)
	v, ok := c2.Verdict(testKey(1))
	if !ok || v.Class != 9 {
		t.Fatalf("replay kept %+v, want the later write", v)
	}
	if c2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c2.Len())
	}
}

// TestCorruptTailRecovery simulates a crash mid-append: the log's tail
// is damaged three different ways, and each time replay must keep
// every intact record, truncate the garbage, and accept new appends
// that survive the next restart.
func TestCorruptTailRecovery(t *testing.T) {
	corruptions := map[string]func(path string, t *testing.T){
		"truncated mid-record": func(path string, t *testing.T) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-5); err != nil {
				t.Fatal(err)
			}
		},
		"flipped payload byte": func(path string, t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-3] ^= 0xff
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"garbage frame appended": func(path string, t *testing.T) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c := openTemp(t, dir, 0)
			c.PutVerdict(testKey(1), Verdict{Class: 1})
			c.PutVerdict(testKey(2), Verdict{Class: 2}) // tail record: the victim
			closeCache(t, c)

			path := filepath.Join(dir, logName)
			corrupt(path, t)

			c2 := openTemp(t, dir, 0)
			if _, ok := c2.Verdict(testKey(1)); !ok {
				t.Fatal("intact record lost")
			}
			// Appending after recovery must land after the truncated
			// tail, not behind garbage.
			c2.PutVerdict(testKey(3), Verdict{Class: 3})
			closeCache(t, c2)

			c3 := openTemp(t, dir, 0)
			defer closeCache(t, c3)
			if _, ok := c3.Verdict(testKey(1)); !ok {
				t.Fatal("intact record lost after reappend")
			}
			if _, ok := c3.Verdict(testKey(3)); !ok {
				t.Fatal("post-recovery append lost")
			}
		})
	}
}

func TestNotACacheLog(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("definitely not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("Open accepted a foreign file as the log")
	}
}

// TestRotationCompactsDeadWeight overwrites one key until the log
// passes the rotation threshold, then checks the log shrank back to
// roughly one live record and still replays correctly.
func TestRotationCompactsDeadWeight(t *testing.T) {
	dir := t.TempDir()
	c := openTemp(t, dir, 0)
	feats := make([]float64, 4096) // ~32KB per record
	for i := range feats {
		feats[i] = float64(i)
	}
	// ~64 overwrites of a 32KB record pass the 1MB threshold with only
	// one record live.
	for i := 0; i < 80; i++ {
		feats[0] = float64(i)
		put := append([]float64(nil), feats...)
		c.PutFeatures(testKey(1), put)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > rotateThreshold {
		t.Fatalf("log not compacted: %d bytes", fi.Size())
	}
	closeCache(t, c)

	c2 := openTemp(t, dir, 0)
	defer closeCache(t, c2)
	f, ok := c2.Features(testKey(1))
	if !ok || f[0] != 79 {
		t.Fatalf("post-rotation replay = %v, %v; want last write", f[:1], ok)
	}
	if c2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c2.Len())
	}
}

// TestRotationPreservesLRUOrder checks the snapshot is written oldest
// first: after rotation + replay, eviction order matches pre-rotation
// recency.
func TestRotationPreservesLRUOrder(t *testing.T) {
	dir := t.TempDir()
	c := openTemp(t, dir, 0)
	for i := byte(1); i <= 3; i++ {
		c.PutVerdict(testKey(i), Verdict{Class: int32(i)})
	}
	c.Verdict(testKey(1)) // 1 becomes most recent; 2 is now LRU
	c.mu.Lock()
	c.maybeRotateLockedForTest()
	c.mu.Unlock()
	closeCache(t, c)

	// Replay under a budget that holds exactly two entries: key 2 (the
	// oldest) must be the one evicted.
	c2 := openTemp(t, dir, 2*entryOverhead)
	defer closeCache(t, c2)
	if _, ok := c2.Verdict(testKey(2)); ok {
		t.Fatal("LRU entry survived budgeted replay")
	}
	if _, ok := c2.Verdict(testKey(3)); !ok {
		t.Fatal("recent entry evicted")
	}
	if _, ok := c2.Verdict(testKey(1)); !ok {
		t.Fatal("most recent entry evicted")
	}
}

// maybeRotateLockedForTest forces a rotation regardless of thresholds.
func (c *Cache) maybeRotateLockedForTest() {
	c.logBytes = rotateThreshold + 2*c.live
	c.maybeRotateLocked()
}

func TestEvictedEntriesStayDeadAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	c := openTemp(t, dir, 2*entryOverhead)
	for i := byte(1); i <= 5; i++ {
		c.PutVerdict(testKey(i), Verdict{Class: int32(i)})
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	closeCache(t, c)

	// The log still holds all five records, but replay re-applies the
	// budget: only the two most recent survive.
	c2 := openTemp(t, dir, 2*entryOverhead)
	defer closeCache(t, c2)
	if c2.Len() != 2 {
		t.Fatalf("replayed Len = %d, want 2", c2.Len())
	}
	for i := byte(1); i <= 3; i++ {
		if _, ok := c2.Verdict(testKey(i)); ok {
			t.Fatalf("evicted key %d resurrected by replay", i)
		}
	}
	for i := byte(4); i <= 5; i++ {
		if _, ok := c2.Verdict(testKey(i)); !ok {
			t.Fatalf("recent key %d lost", i)
		}
	}
}
