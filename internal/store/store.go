// Package store is a crash-safe, content-addressed result cache for
// the serving path: it memoizes extracted feature vectors and final
// verdicts keyed by (content hash, salt, model fingerprint), so a
// repeat submission of byte-identical input skips the entire
// extract+score pipeline and becomes a hash lookup.
//
// The design is an append-only record log with an in-memory index:
//
//   - Every Put appends one length-prefixed, CRC-guarded record to
//     <dir>/cache.log and inserts the value into an in-memory map.
//     Lookups never touch the disk.
//   - On Open the log is replayed to rebuild the index. A torn or
//     corrupted tail record (a crash mid-append) ends the replay; the
//     file is truncated back to the last intact record and appending
//     resumes from there, so a crash costs at most the record being
//     written.
//   - The index is LRU-bounded by a configurable byte budget. When the
//     log accumulates enough dead weight (overwritten or evicted
//     records), it is compacted by writing the live entries to a
//     temporary file and atomically renaming it over the log.
//
// Entries are never stale by construction: the key includes a model
// fingerprint, so a retrained model addresses a disjoint key space and
// old entries simply stop being referenced (and age out of the LRU).
//
// The cache is safe for concurrent use. A nil *Cache discards all
// operations, so callers thread it unconditionally.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"soteria/internal/obs"
)

// Key addresses one memoized result. Content is a collision-resistant
// hash of the submitted input (raw binary bytes, or a canonical CFG
// digest — the two producers domain-separate their hashes), Salt is
// the walk-randomness salt the result was computed under, and Model
// fingerprints the full serialized model state, so a retrained model
// can never serve another model's entries.
type Key struct {
	Content [32]byte
	Salt    int64
	Model   [32]byte
}

// Verdict is the cached form of a final decision. Class is kept as a
// plain integer so the store stays independent of the model packages.
type Verdict struct {
	Adversarial bool
	RE          float64
	Class       int32
}

// Config configures Open.
type Config struct {
	// Dir is the directory holding the record log. Empty means
	// memory-only: the cache works normally but nothing survives a
	// restart.
	Dir string
	// MaxBytes bounds the in-memory (and post-compaction on-disk) size
	// of the cache; least-recently-used entries are evicted past it.
	// Zero or negative means DefaultMaxBytes.
	MaxBytes int64
	// Obs, when non-nil, receives the cache's counters ("cache.hit",
	// "cache.miss", "cache.evict") and the live-byte gauge
	// ("cache.bytes"). Observations never affect cache behaviour.
	Obs *obs.Registry
}

// DefaultMaxBytes is the byte budget used when Config.MaxBytes is unset.
const DefaultMaxBytes = 256 << 20

// entry kinds, also the on-disk record kind byte.
const (
	kindVerdict  byte = 1
	kindFeatures byte = 2
)

// indexKey addresses one entry: the two tiers of the same Key are
// independent entries with independent recency.
type indexKey struct {
	key  Key
	kind byte
}

// entry is one cached value, intrusively linked into the LRU list
// (head side is most recently used).
type entry struct {
	ik         indexKey
	verdict    Verdict   // kind == kindVerdict
	feats      []float64 // kind == kindFeatures; read-only once stored
	size       int64     // accounted bytes
	prev, next *entry
}

// entryOverhead approximates the fixed per-entry cost (key, pointers,
// map slot) charged against the byte budget on top of the payload.
const entryOverhead = 128

// Cache is the content-addressed result cache. See the package comment
// for the design; construct with Open.
type Cache struct {
	mu      sync.Mutex
	max     int64
	index   map[indexKey]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	live    int64  // accounted bytes of all indexed entries
	flights map[Key]*Flight

	// log state; f is nil when memory-only or after an I/O error
	// demoted the cache to memory-only.
	dir      string
	f        *os.File
	logBytes int64
	buf      []byte // append scratch, reused under mu
	ioErr    error  // first I/O error, sticky

	hits   *obs.Counter
	misses *obs.Counter
	evicts *obs.Counter
	bytes  *obs.Gauge
}

// Open opens (or creates) a cache. With a Dir, the existing record log
// is replayed into the index — entries stored before a restart are hits
// again — and a corrupt tail is truncated away. Callers must Close the
// cache to release the log file.
func Open(cfg Config) (*Cache, error) {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	c := &Cache{
		max:     cfg.MaxBytes,
		index:   make(map[indexKey]*entry),
		flights: make(map[Key]*Flight),
		dir:     cfg.Dir,
	}
	if r := cfg.Obs; r != nil {
		c.hits = r.Counter("cache.hit")
		c.misses = r.Counter("cache.miss")
		c.evicts = r.Counter("cache.evict")
		c.bytes = r.Gauge("cache.bytes")
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := c.openLog(filepath.Join(cfg.Dir, logName)); err != nil {
			return nil, err
		}
	}
	c.bytes.Set(float64(c.live))
	return c, nil
}

// Verdict returns the cached verdict for k, refreshing its recency.
func (c *Cache) Verdict(k Key) (Verdict, bool) {
	if c == nil {
		return Verdict{}, false
	}
	c.mu.Lock()
	e, ok := c.index[indexKey{k, kindVerdict}]
	var v Verdict
	if ok {
		c.touch(e)
		v = e.verdict
	}
	c.mu.Unlock()
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return v, ok
}

// Features returns the cached feature blob for k, refreshing its
// recency. The returned slice is shared with the cache and MUST be
// treated as read-only.
func (c *Cache) Features(k Key) ([]float64, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	e, ok := c.index[indexKey{k, kindFeatures}]
	var f []float64
	if ok {
		c.touch(e)
		f = e.feats
	}
	c.mu.Unlock()
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return f, ok
}

// PutVerdict stores the verdict for k. Best-effort on the durability
// side: an append error demotes the cache to memory-only (see Err).
func (c *Cache) PutVerdict(k Key, v Verdict) {
	if c == nil {
		return
	}
	c.put(&entry{ik: indexKey{k, kindVerdict}, verdict: v, size: entryOverhead})
}

// PutFeatures stores the feature blob for k, taking ownership of vals
// (the caller must not mutate it afterwards).
func (c *Cache) PutFeatures(k Key, vals []float64) {
	if c == nil {
		return
	}
	c.put(&entry{ik: indexKey{k, kindFeatures}, feats: vals, size: entryOverhead + 8*int64(len(vals))})
}

// put inserts e, evicts past the budget, and appends the record to the
// log. An entry that alone exceeds the whole budget is dropped.
func (c *Cache) put(e *entry) {
	if e.size > c.max {
		return
	}
	c.mu.Lock()
	c.insert(e, true)
	c.mu.Unlock()
	c.bytes.Set(float64(c.liveBytes()))
}

// insert is put under c.mu; replay reuses it with persist=false.
func (c *Cache) insert(e *entry, persist bool) {
	if old, ok := c.index[e.ik]; ok {
		c.unlink(old)
		delete(c.index, old.ik)
		c.live -= old.size
	}
	c.index[e.ik] = e
	c.linkFront(e)
	c.live += e.size
	for c.live > c.max && c.tail != nil {
		lru := c.tail
		c.unlink(lru)
		delete(c.index, lru.ik)
		c.live -= lru.size
		c.evicts.Inc()
	}
	if persist && c.f != nil {
		c.appendLocked(e)
	}
}

// touch moves e to the recent end of the LRU list. Caller holds c.mu.
func (c *Cache) touch(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.linkFront(e)
}

func (c *Cache) linkFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// liveBytes returns the accounted in-memory bytes.
func (c *Cache) liveBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live
}

// Len returns the number of cached entries (both tiers).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// Err returns the first I/O error the cache hit, if any. After an I/O
// error the cache keeps serving from memory but stops persisting.
func (c *Cache) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ioErr
}

// Close syncs and releases the record log. The cache must not be used
// afterwards. Returns the sticky I/O error if persistence failed
// earlier.
func (c *Cache) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f != nil {
		if err := c.f.Sync(); err != nil && c.ioErr == nil {
			c.ioErr = err
		}
		if err := c.f.Close(); err != nil && c.ioErr == nil {
			c.ioErr = err
		}
		c.f = nil
	}
	return c.ioErr
}

// Flight coordinates concurrent misses on one key: the first caller to
// Join a key leads (and does the real work); the rest wait on Done and
// read the leader's published verdict, so one miss fills the cache for
// every concurrent duplicate.
type Flight struct {
	done chan struct{}
	v    Verdict
	ok   bool
}

// Done is closed when the leader finishes (successfully or not).
func (f *Flight) Done() <-chan struct{} { return f.done }

// Result returns the leader's verdict. Valid only after Done is
// closed; ok is false when the leader failed and the caller should do
// the work itself.
func (f *Flight) Result() (Verdict, bool) { return f.v, f.ok }

// Join atomically looks up k's verdict and, on a miss, enrolls the
// caller in the key's in-flight computation: hit=true returns the
// cached verdict; otherwise the caller either leads the flight
// (leader=true — it must call Finish exactly once) or should wait on
// the returned flight's Done.
func (c *Cache) Join(k Key) (v Verdict, hit bool, fl *Flight, leader bool) {
	if c == nil {
		return Verdict{}, false, nil, true
	}
	c.mu.Lock()
	if e, ok := c.index[indexKey{k, kindVerdict}]; ok {
		c.touch(e)
		v = e.verdict
		c.mu.Unlock()
		c.hits.Inc()
		return v, true, nil, false
	}
	if fl, ok := c.flights[k]; ok {
		c.mu.Unlock()
		return Verdict{}, false, fl, false
	}
	fl = &Flight{done: make(chan struct{})}
	c.flights[k] = fl
	c.mu.Unlock()
	c.misses.Inc()
	return Verdict{}, false, fl, true
}

// Finish completes a led flight: it publishes the result (ok=false
// signals failure, sending the waiters back to do the work themselves)
// and wakes every waiter. Finish does not store the verdict — the
// leader's scoring path already did.
func (c *Cache) Finish(k Key, fl *Flight, v Verdict, ok bool) {
	if c == nil || fl == nil {
		return
	}
	c.mu.Lock()
	if c.flights[k] == fl {
		delete(c.flights, k)
	}
	c.mu.Unlock()
	fl.v, fl.ok = v, ok
	close(fl.done)
}
