package store

import (
	"math/rand"
	"sync"
	"testing"

	"soteria/internal/obs"
)

func testKey(n byte) Key {
	var k Key
	k.Content[0] = n
	k.Content[31] = n ^ 0xff
	k.Salt = int64(n)
	k.Model[0] = 7
	return k
}

func TestMemoryRoundTrip(t *testing.T) {
	c, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	k := testKey(1)
	if _, ok := c.Verdict(k); ok {
		t.Fatal("hit on empty cache")
	}
	want := Verdict{Adversarial: true, RE: 0.125, Class: 3}
	c.PutVerdict(k, want)
	got, ok := c.Verdict(k)
	if !ok || got != want {
		t.Fatalf("Verdict = %+v, %v; want %+v, true", got, ok, want)
	}

	feats := []float64{1, 2.5, -3, 0}
	c.PutFeatures(k, feats)
	f, ok := c.Features(k)
	if !ok || len(f) != len(feats) {
		t.Fatalf("Features = %v, %v", f, ok)
	}
	for i := range feats {
		if f[i] != feats[i] {
			t.Fatalf("feats[%d] = %v want %v", i, f[i], feats[i])
		}
	}

	// The two tiers are independent entries under one Key.
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}

	// A different salt must miss.
	k2 := k
	k2.Salt++
	if _, ok := c.Verdict(k2); ok {
		t.Fatal("salt change did not miss")
	}
	// A different model must miss.
	k3 := k
	k3.Model[5] = 99
	if _, ok := c.Verdict(k3); ok {
		t.Fatal("model change did not miss")
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	c.PutVerdict(testKey(1), Verdict{})
	c.PutFeatures(testKey(1), []float64{1})
	if _, ok := c.Verdict(testKey(1)); ok {
		t.Fatal("nil cache hit")
	}
	if _, ok := c.Features(testKey(1)); ok {
		t.Fatal("nil cache hit")
	}
	if _, hit, fl, leader := c.Join(testKey(1)); hit || fl != nil || !leader {
		t.Fatal("nil Join should make every caller an uncoordinated leader")
	}
	c.Finish(testKey(1), nil, Verdict{}, true)
	if c.Len() != 0 || c.Err() != nil || c.Close() != nil {
		t.Fatal("nil accessors not inert")
	}
}

func TestObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := Open(Config{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	k := testKey(4)
	c.Verdict(k) // miss
	c.PutVerdict(k, Verdict{Class: 1})
	c.Verdict(k) // hit
	snap := reg.Snapshot()
	if miss, _ := snap["cache.miss"].(uint64); miss != 1 {
		t.Fatalf("cache.miss = %v", snap["cache.miss"])
	}
	if hit, _ := snap["cache.hit"].(uint64); hit != 1 {
		t.Fatalf("cache.hit = %v", snap["cache.hit"])
	}
	if bytes, _ := snap["cache.bytes"].(float64); bytes <= 0 {
		t.Fatalf("cache.bytes = %v, want > 0", snap["cache.bytes"])
	}
}

// TestLRUAgainstReferenceModel drives a random op sequence against both
// the cache and a brute-force reference (map + recency slice) and
// checks that contents and eviction victims agree exactly.
func TestLRUAgainstReferenceModel(t *testing.T) {
	const budget = 16 * entryOverhead
	c, err := Open(Config{MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	type refEnt struct {
		k Key
		v Verdict
	}
	var ref []refEnt // index 0 = least recently used
	find := func(k Key) int {
		for i := range ref {
			if ref[i].k == k {
				return i
			}
		}
		return -1
	}
	touch := func(i int) refEnt {
		e := ref[i]
		ref = append(ref[:i], ref[i+1:]...)
		ref = append(ref, e)
		return e
	}

	rng := rand.New(rand.NewSource(33))
	for step := 0; step < 5000; step++ {
		k := testKey(byte(rng.Intn(40)))
		if rng.Intn(2) == 0 {
			v := Verdict{RE: float64(step), Class: int32(step)}
			c.PutVerdict(k, v)
			if i := find(k); i >= 0 {
				ref[i].v = v
				touch(i)
			} else {
				ref = append(ref, refEnt{k, v})
			}
			for len(ref)*entryOverhead > budget {
				ref = ref[1:] // evict reference-LRU
			}
		} else {
			got, ok := c.Verdict(k)
			i := find(k)
			if ok != (i >= 0) {
				t.Fatalf("step %d: presence mismatch for key %d: cache=%v ref=%v", step, k.Salt, ok, i >= 0)
			}
			if ok {
				e := touch(i)
				if got != e.v {
					t.Fatalf("step %d: value mismatch: %+v vs %+v", step, got, e.v)
				}
			}
		}
		if c.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, ref = %d", step, c.Len(), len(ref))
		}
	}
}

func TestOversizeEntryDropped(t *testing.T) {
	c, err := Open(Config{MaxBytes: entryOverhead + 64})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	k := testKey(9)
	c.PutFeatures(k, make([]float64, 1000)) // 8128 bytes: larger than the whole budget
	if _, ok := c.Features(k); ok {
		t.Fatal("oversize entry was cached")
	}
	c.PutVerdict(k, Verdict{Class: 2})
	if _, ok := c.Verdict(k); !ok {
		t.Fatal("normal entry rejected")
	}
}

func TestJoinFlightDedup(t *testing.T) {
	c, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	k := testKey(5)

	_, hit, fl, leader := c.Join(k)
	if hit || !leader || fl == nil {
		t.Fatalf("first Join: hit=%v leader=%v", hit, leader)
	}

	// Concurrent joiners all get the same flight, none lead.
	const n = 16
	var wg sync.WaitGroup
	results := make([]Verdict, n)
	for i := 0; i < n; i++ {
		_, hit2, fl2, leader2 := c.Join(k)
		if hit2 || leader2 || fl2 != fl {
			t.Fatalf("follower %d: hit=%v leader=%v sameFlight=%v", i, hit2, leader2, fl2 == fl)
		}
		wg.Add(1)
		go func(i int, fl *Flight) {
			defer wg.Done()
			<-fl.Done()
			v, ok := fl.Result()
			if !ok {
				t.Errorf("follower %d: leader reported failure", i)
				return
			}
			results[i] = v
		}(i, fl2)
	}

	want := Verdict{Adversarial: true, RE: 1.5, Class: 2}
	c.PutVerdict(k, want)
	c.Finish(k, fl, want, true)
	wg.Wait()
	for i, v := range results {
		if v != want {
			t.Fatalf("follower %d got %+v", i, v)
		}
	}

	// After Finish the flight is gone: a new Join hits the stored verdict.
	v, hit, _, _ := c.Join(k)
	if !hit || v != want {
		t.Fatalf("post-finish Join: %+v, hit=%v", v, hit)
	}
}

func TestJoinFlightLeaderFailure(t *testing.T) {
	c, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	k := testKey(6)
	_, _, fl, leader := c.Join(k)
	if !leader {
		t.Fatal("expected leadership")
	}
	_, _, fl2, leader2 := c.Join(k)
	if leader2 || fl2 != fl {
		t.Fatal("expected follower on same flight")
	}
	c.Finish(k, fl, Verdict{}, false)
	<-fl2.Done()
	if _, ok := fl2.Result(); ok {
		t.Fatal("failed flight reported ok")
	}
	// The key is free again: the follower can retry and lead.
	_, hit, _, leader3 := c.Join(k)
	if hit || !leader3 {
		t.Fatalf("retry: hit=%v leader=%v", hit, leader3)
	}
}
