// Package walk implements the paper's random-walk feature traversal
// (section III-B.2): a marker starts at the CFG entry block and moves to
// a uniformly random adjacent vertex of the undirected graph view,
// recording the label of every visited node. Soteria performs ten walks
// of length 5·|V| per labeling, and the walk traces are the only thing
// downstream feature extraction ever sees — the randomization that makes
// the classifier's effective feature space unpredictable to an adversary.
package walk

import (
	"math/rand"

	"soteria/internal/graph"
)

// DefaultCount is the paper's number of walks per labeling.
const DefaultCount = 10

// DefaultLengthFactor is the paper's walk length multiplier: a walk
// takes 5·|V| steps.
const DefaultLengthFactor = 5

// Random performs one random walk of the given number of steps starting
// at entry, returning the sequence of visited labels (steps+1 entries
// including the start). labels[v] is the label of node v. The walk
// stops early only at a node with no undirected neighbors.
func Random(g *graph.Graph, entry int, labels []int, steps int, rng *rand.Rand) []int {
	trace := make([]int, 0, steps+1)
	cur := entry
	trace = append(trace, labels[cur])
	for i := 0; i < steps; i++ {
		nbrs := g.UndirectedNeighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		cur = nbrs[rng.Intn(len(nbrs))]
		trace = append(trace, labels[cur])
	}
	return trace
}

// Walks performs count walks of lengthFactor·|V| steps each and returns
// their traces.
func Walks(g *graph.Graph, entry int, labels []int, count, lengthFactor int, rng *rand.Rand) [][]int {
	steps := lengthFactor * g.NumNodes()
	out := make([][]int, count)
	for i := range out {
		out[i] = Random(g, entry, labels, steps, rng)
	}
	return out
}
