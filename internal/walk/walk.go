// Package walk implements the paper's random-walk feature traversal
// (section III-B.2): a marker starts at the CFG entry block and moves to
// a uniformly random adjacent vertex of the undirected graph view,
// recording the label of every visited node. Soteria performs ten walks
// of length 5·|V| per labeling, and the walk traces are the only thing
// downstream feature extraction ever sees — the randomization that makes
// the classifier's effective feature space unpredictable to an adversary.
//
// The hot path is allocation-aware: a Walker caches the undirected
// adjacency of one graph in CSR form (built once, reused by all 20
// walks of a sample and recyclable across samples), and RandomInto
// appends into a caller-owned trace buffer. Random/Walks remain as
// convenience wrappers with identical output.
package walk

import (
	"math/rand"

	"soteria/internal/graph"
)

// DefaultCount is the paper's number of walks per labeling.
const DefaultCount = 10

// DefaultLengthFactor is the paper's walk length multiplier: a walk
// takes 5·|V| steps.
const DefaultLengthFactor = 5

// Walker caches one graph's undirected adjacency so that repeated walks
// do not re-merge successor/predecessor lists at every step (the
// dominant allocation of the naive path). The zero value is ready to
// use; Reset re-targets it at another graph while keeping its buffers.
// Not safe for concurrent use; pool one per worker.
type Walker struct {
	g *graph.Graph
	// CSR view of the undirected adjacency: node u's neighbors are
	// flat[offsets[u]:offsets[u+1]].
	offsets []int
	flat    []int
}

// NewWalker returns a walker bound to g.
func NewWalker(g *graph.Graph) *Walker {
	w := &Walker{}
	w.Reset(g)
	return w
}

// Reset re-targets the walker at g, rebuilding the adjacency cache in
// the existing buffers.
func (w *Walker) Reset(g *graph.Graph) {
	w.g = g
	n := g.NumNodes()
	if cap(w.offsets) < n+1 {
		w.offsets = make([]int, 0, n+1)
	}
	w.offsets = w.offsets[:0]
	w.flat = w.flat[:0]
	for u := 0; u < n; u++ {
		w.offsets = append(w.offsets, len(w.flat))
		w.flat = g.AppendUndirectedNeighbors(w.flat, u)
	}
	w.offsets = append(w.offsets, len(w.flat))
}

// neighbors returns the cached undirected neighbor list of u.
func (w *Walker) neighbors(u int) []int {
	return w.flat[w.offsets[u]:w.offsets[u+1]]
}

// RandomInto performs one random walk of steps steps from entry,
// appending visited labels to buf[:0] and returning it (steps+1 entries
// including the start, fewer only if a node with no undirected
// neighbors is reached). Output is identical to Random for the same rng
// state.
func (w *Walker) RandomInto(buf []int, entry int, labels []int, steps int, rng *rand.Rand) []int {
	trace := buf[:0]
	cur := entry
	trace = append(trace, labels[cur])
	for i := 0; i < steps; i++ {
		nbrs := w.neighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		cur = nbrs[rng.Intn(len(nbrs))]
		trace = append(trace, labels[cur])
	}
	return trace
}

// Random performs one random walk of the given number of steps starting
// at entry, returning the sequence of visited labels (steps+1 entries
// including the start). labels[v] is the label of node v. The walk
// stops early only at a node with no undirected neighbors.
func Random(g *graph.Graph, entry int, labels []int, steps int, rng *rand.Rand) []int {
	trace := make([]int, 0, steps+1)
	cur := entry
	trace = append(trace, labels[cur])
	for i := 0; i < steps; i++ {
		nbrs := g.UndirectedNeighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		cur = nbrs[rng.Intn(len(nbrs))]
		trace = append(trace, labels[cur])
	}
	return trace
}

// Walks performs count walks of lengthFactor·|V| steps each and returns
// their traces.
func Walks(g *graph.Graph, entry int, labels []int, count, lengthFactor int, rng *rand.Rand) [][]int {
	steps := lengthFactor * g.NumNodes()
	w := NewWalker(g)
	out := make([][]int, count)
	for i := range out {
		out[i] = w.RandomInto(make([]int, 0, steps+1), entry, labels, steps, rng)
	}
	return out
}
