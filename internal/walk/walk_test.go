package walk

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"soteria/internal/graph"
)

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func ring(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	return g
}

func TestRandomWalkLengthAndStart(t *testing.T) {
	g := ring(6)
	rng := rand.New(rand.NewSource(1))
	trace := Random(g, 2, identity(6), 30, rng)
	if len(trace) != 31 {
		t.Fatalf("trace length = %d, want 31", len(trace))
	}
	if trace[0] != 2 {
		t.Fatalf("trace[0] = %d, want entry label 2", trace[0])
	}
}

func TestRandomWalkStepsAreAdjacent(t *testing.T) {
	g := ring(8)
	rng := rand.New(rand.NewSource(2))
	trace := Random(g, 0, identity(8), 100, rng)
	for i := 1; i < len(trace); i++ {
		u, v := trace[i-1], trace[i]
		found := false
		for _, n := range g.UndirectedNeighbors(u) {
			if n == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("step %d: %d -> %d not adjacent", i, u, v)
		}
	}
}

func TestRandomWalkUsesLabels(t *testing.T) {
	g := ring(3)
	labels := []int{10, 20, 30}
	rng := rand.New(rand.NewSource(3))
	trace := Random(g, 0, labels, 10, rng)
	for _, l := range trace {
		if l != 10 && l != 20 && l != 30 {
			t.Fatalf("unexpected label %d in trace", l)
		}
	}
	if trace[0] != 10 {
		t.Fatalf("trace[0] = %d, want 10", trace[0])
	}
}

func TestRandomWalkIsolatedNodeStops(t *testing.T) {
	g := graph.New(1)
	trace := Random(g, 0, []int{0}, 10, rand.New(rand.NewSource(4)))
	if len(trace) != 1 {
		t.Fatalf("isolated node trace = %v, want length 1", trace)
	}
}

func TestRandomWalkDeterministicPerSeed(t *testing.T) {
	g := ring(10)
	a := Random(g, 0, identity(10), 50, rand.New(rand.NewSource(7)))
	b := Random(g, 0, identity(10), 50, rand.New(rand.NewSource(7)))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different walks")
	}
	c := Random(g, 0, identity(10), 50, rand.New(rand.NewSource(8)))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical 50-step walks")
	}
}

func TestWalksCountAndLength(t *testing.T) {
	g := ring(4)
	rng := rand.New(rand.NewSource(5))
	traces := Walks(g, 0, identity(4), 10, 5, rng)
	if len(traces) != 10 {
		t.Fatalf("walk count = %d, want 10", len(traces))
	}
	for i, tr := range traces {
		if len(tr) != 5*4+1 {
			t.Fatalf("walk %d length = %d, want %d", i, len(tr), 5*4+1)
		}
	}
}

func TestPropertyWalkVisitsOnlyReachableLabels(t *testing.T) {
	// Over the undirected view of a connected graph, a long walk from
	// the entry must stay within the graph's label set and cover more
	// than one node.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := ring(n)
		trace := Random(g, 0, identity(n), 4*n, rng)
		if len(trace) != 4*n+1 {
			return false
		}
		distinct := map[int]bool{}
		for _, l := range trace {
			if l < 0 || l >= n {
				return false
			}
			distinct[l] = true
		}
		return len(distinct) > 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWalkerMatchesRandom(t *testing.T) {
	// The CSR-cached walker must consume the RNG and emit traces exactly
	// like the naive per-step path.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		g := ring(n)
		// Add some chords so neighbor lists vary in size.
		for i := 0; i < n/2; i++ {
			g.MustAddEdge(rng.Intn(n), rng.Intn(n))
		}
		labels := identity(n)
		steps := 4 * n

		r1 := rand.New(rand.NewSource(seed + 100))
		want := Random(g, 0, labels, steps, r1)

		r2 := rand.New(rand.NewSource(seed + 100))
		w := NewWalker(g)
		got := w.RandomInto(nil, 0, labels, steps, r2)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: walker trace diverges from Random", seed)
		}
	}
}

func TestWalkerResetReusesBuffers(t *testing.T) {
	a, b := ring(8), ring(5)
	w := NewWalker(a)
	rng := rand.New(rand.NewSource(2))
	buf := w.RandomInto(nil, 0, identity(8), 20, rng)
	w.Reset(b)
	// After a reset the walker must serve the new graph's adjacency.
	rng2 := rand.New(rand.NewSource(3))
	want := Random(b, 0, identity(5), 15, rand.New(rand.NewSource(3)))
	got := w.RandomInto(buf, 0, identity(5), 15, rng2)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("walker after Reset diverges from Random on the new graph")
	}
}

func TestWalkerSteadyStateAllocFree(t *testing.T) {
	g := ring(32)
	labels := identity(32)
	w := NewWalker(g)
	rng := rand.New(rand.NewSource(4))
	buf := w.RandomInto(nil, 0, labels, 200, rng) // warm the buffer
	allocs := testing.AllocsPerRun(50, func() {
		w.Reset(g)
		buf = w.RandomInto(buf, 0, labels, 200, rng)
	})
	if allocs > 0 {
		t.Fatalf("steady-state walk allocates %.1f/op, want 0", allocs)
	}
}

func TestWalkerDeadEndStopsEarly(t *testing.T) {
	g := graph.New(2) // two isolated nodes
	w := NewWalker(g)
	got := w.RandomInto(nil, 0, identity(2), 10, rand.New(rand.NewSource(1)))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("trace from isolated entry = %v, want [0]", got)
	}
}
