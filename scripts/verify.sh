#!/usr/bin/env bash
# Full per-PR verification: build, tests, vet, formatting, the repo's
# own ten-analyzer lint pass, and the race detector over every package
# with concurrency. Mirrors the "Full verify" block in ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go vet"
go vet ./...

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== soterialint (ten analyzers, interprocedural facts)"
go run ./cmd/soterialint ./...

echo "== race suite"
go test -race ./internal/features ./internal/nn ./internal/core \
    ./internal/par ./internal/walk ./internal/autoenc ./internal/cnn \
    ./internal/obs ./internal/lint ./internal/store ./internal/fleet ./internal/registry

echo "verify: OK"
