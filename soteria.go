// Package soteria is the public API of this reproduction of "Soteria:
// Detecting Adversarial Examples in Control Flow Graph-based Malware
// Classifiers" (Alasmary et al., ICDCS 2020).
//
// Soteria defends CFG-based IoT malware classifiers against adversarial
// examples. A binary is disassembled into its control flow graph; nodes
// are labeled by density (DBL) and by level (LBL); random walks over the
// labeled graph are summarized as TF-IDF-weighted n-grams; an
// autoencoder trained only on clean samples flags adversarial inputs by
// reconstruction error; and a majority-voting pair of 1-D CNNs
// classifies clean samples into Benign, Gafgyt, Mirai, or Tsunami.
//
// Quick start:
//
//	gen := soteria.NewGenerator(soteria.GeneratorConfig{Seed: 1})
//	corpus, _ := gen.Corpus(map[soteria.Class]int{
//		soteria.Benign: 100, soteria.Gafgyt: 100,
//		soteria.Mirai: 100, soteria.Tsunami: 50,
//	})
//	sys, _ := soteria.Train(corpus, soteria.DefaultOptions())
//	dec, _ := sys.Analyze(corpus[0].CFG, 0)
//	fmt.Println(dec.Adversarial, dec.Class)
//
// The real system consumes binaries: Analyze accepts any CFG recovered
// by the bundled disassembler, and AnalyzeBinary accepts raw SOTB
// container bytes. See DESIGN.md for what stands in for the paper's
// proprietary dataset and toolchain, and EXPERIMENTS.md for the
// reproduced tables and figures.
package soteria

import (
	"io"

	"soteria/internal/core"
	"soteria/internal/disasm"
	"soteria/internal/gea"
	"soteria/internal/isa"
	"soteria/internal/malgen"
	"soteria/internal/obs"
	"soteria/internal/registry"
	"soteria/internal/store"
)

// Class identifies a sample class (Benign or a malware family).
type Class = malgen.Class

// Sample classes.
const (
	Benign  = malgen.Benign
	Gafgyt  = malgen.Gafgyt
	Mirai   = malgen.Mirai
	Tsunami = malgen.Tsunami
)

// Classes lists all classes in canonical order.
var Classes = malgen.Classes

// NumClasses is the number of classes.
const NumClasses = malgen.NumClasses

// Sample is one corpus entry: program, binary, and recovered CFG.
type Sample = malgen.Sample

// CFG is a control flow graph recovered by the disassembler.
type CFG = disasm.CFG

// Binary is a parsed SOTB executable.
type Binary = isa.Binary

// Program is the structured form of a SOT-32 executable.
type Program = isa.Program

// GeneratorConfig parameterizes the synthetic corpus generator.
type GeneratorConfig = malgen.Config

// Generator produces synthetic IoT samples with family-specific CFG
// structure (the stand-in for the paper's CyberIOC + GitHub corpus).
type Generator = malgen.Generator

// NewGenerator returns a corpus generator.
func NewGenerator(cfg GeneratorConfig) *Generator { return malgen.NewGenerator(cfg) }

// Options configures system training.
type Options = core.Options

// DefaultOptions returns CI-scale training options (minutes on a
// laptop).
func DefaultOptions() Options { return core.DefaultOptions() }

// PaperOptions returns the paper's full-scale parameters (1000
// features, 46-filter CNNs, 100 epochs).
func PaperOptions() Options { return core.PaperOptions() }

// Decision is the system's verdict on one sample.
type Decision = core.Decision

// System is a trained Soteria instance: feature extractor, adversarial
// example detector, and majority-voting classifier.
type System struct {
	pipeline *core.Pipeline
}

// Train fits Soteria on labeled clean samples. Neither model ever sees
// adversarial data.
func Train(samples []*Sample, opts Options) (*System, error) {
	p, err := core.Train(samples, opts)
	if err != nil {
		return nil, err
	}
	return &System{pipeline: p}, nil
}

// Analyze runs detection and classification on a CFG. salt
// individualizes walk randomness; use a stable per-sample value for
// reproducible results.
func (s *System) Analyze(c *CFG, salt int64) (*Decision, error) {
	return s.pipeline.Analyze(c, salt)
}

// AnalyzeBinary disassembles raw SOTB bytes and analyzes the result.
func (s *System) AnalyzeBinary(raw []byte, salt int64) (*Decision, error) {
	return s.pipeline.AnalyzeBinary(raw, salt)
}

// AnalyzeBatch analyzes many CFGs through the batched scoring pipeline:
// extraction overlaps cross-sample batched forwards, producing results
// bit-identical to per-sample Analyze calls with the same salts.
func (s *System) AnalyzeBatch(cfgs []*CFG, salts []int64) ([]*Decision, error) {
	return s.pipeline.AnalyzeBatch(cfgs, salts)
}

// AnalyzeBinaryBatch disassembles and analyzes many raw SOTB binaries
// in one batched pass.
func (s *System) AnalyzeBinaryBatch(bins [][]byte, salts []int64) ([]*Decision, error) {
	return s.pipeline.AnalyzeBinaryBatch(bins, salts)
}

// Batcher coalesces concurrent Analyze requests into shared batched
// forwards; see NewBatcher.
type Batcher = core.Batcher

// BatcherConfig tunes a Batcher's batch-size/latency tradeoff.
type BatcherConfig = core.BatcherConfig

// ErrBatcherClosed is returned by Batcher.Submit after Close.
var ErrBatcherClosed = core.ErrBatcherClosed

// NewBatcher starts a micro-batching front door over the trained
// system: concurrent callers Submit one CFG each and receive decisions
// bit-identical to lone Analyze calls with the same salt, while the
// batcher coalesces up to MaxBatch requests (or MaxWait of arrival
// time) into shared batched forwards. Close it to release the
// collector goroutine.
func (s *System) NewBatcher(cfg BatcherConfig) *Batcher {
	return core.NewBatcher(s.pipeline, cfg)
}

// Pipeline exposes the underlying components (extractor, detector,
// ensemble) for advanced use such as threshold sweeps or classifier
// replacement.
func (s *System) Pipeline() *core.Pipeline { return s.pipeline }

// SetFastScoring toggles the opt-in relaxed-precision scoring mode:
// FMA GEMM micro-kernels, relaxed near-zero skipping, and a
// reciprocal-multiply softmax. Scores stay within the tolerance
// documented in DESIGN.md §7 of the default bit-exact path; decisions
// can differ only for samples whose score sits within that tolerance
// of the detector threshold or of a voting tie. Off by default, never
// persisted (a loaded system always starts bit-exact), and ignored by
// training. Toggle before serving traffic, not concurrently with
// Analyze calls.
func (s *System) SetFastScoring(on bool) { s.pipeline.SetFastScoring(on) }

// FastScoring reports whether relaxed-precision scoring is enabled.
func (s *System) FastScoring() bool { return s.pipeline.FastScoring() }

// Cache is a crash-safe, content-addressed result cache: it memoizes
// feature vectors and verdicts keyed by (content hash, salt, model
// fingerprint), turning repeat submissions of identical input into
// hash lookups. See OpenCache and System.AttachCache.
type Cache = store.Cache

// CacheConfig configures OpenCache: an on-disk directory (empty for
// memory-only), a byte budget, and an optional metric registry for
// hit/miss/evict counters.
type CacheConfig = store.Config

// DefaultCacheMaxBytes is the cache byte budget used when
// CacheConfig.MaxBytes is unset.
const DefaultCacheMaxBytes = store.DefaultMaxBytes

// OpenCache opens (or creates) a result cache. With a Dir, entries
// persist across restarts via an append-only record log (a corrupt
// tail from a crash is truncated away on open). Close the cache when
// done.
func OpenCache(cfg CacheConfig) (*Cache, error) { return store.Open(cfg) }

// AttachCache attaches (nil detaches) a result cache to the system:
// AnalyzeBinary, AnalyzeBinaryBatch and Batcher submissions consult it
// before doing any work and fill it as they compute. Keys include the
// model's fingerprint, so a cache may be shared between models (or
// survive a retrain) without ever serving stale verdicts, and cached
// decisions are bit-identical to uncached ones. Attach before serving
// traffic, not concurrently with Analyze calls. Also reachable at
// training time via Options.Cache.
func (s *System) AttachCache(c *Cache) error { return s.pipeline.AttachCache(c) }

// ModelRegistry is a versioned model registry for zero-downtime model
// rollout: it holds multiple loaded systems keyed by fingerprint-derived
// version IDs, serves analyses through an atomically swappable active
// version (each decision comes entirely from one version, even across a
// swap), and shadow-scores a candidate on sampled live traffic so
// cutover can be gated on observed agreement and RE drift. Its
// AdminHandler exposes the /models API the built-in server mounts.
type ModelRegistry = registry.Registry

// ModelRegistryConfig configures NewModelRegistry: per-version Batcher
// tuning, an optional shared result cache (versions never share
// entries — keys embed each version's fingerprint), an optional metric
// registry, and the shadow mirror queue bound.
type ModelRegistryConfig = registry.Config

// ModelInfo describes one registered model version.
type ModelInfo = registry.ModelInfo

// ShadowStats is a snapshot of the running shadow-scoring session.
type ShadowStats = registry.ShadowStats

// ErrNoActiveModel is returned by ModelRegistry submissions before any
// version has been activated.
var ErrNoActiveModel = registry.ErrNoActive

// NewModelRegistry returns an empty model registry. Close it to stop
// the shadow scorer and every version's batcher.
func NewModelRegistry(cfg ModelRegistryConfig) *ModelRegistry { return registry.New(cfg) }

// AddModel registers a trained system in the registry and returns its
// version ID (idempotent per fingerprint). Activate the ID to serve
// it, or shadow it against the active version first.
func AddModel(r *ModelRegistry, s *System) (string, error) { return r.Load(s.pipeline) }

// Registry is a named metric namespace for the serving path's
// observability layer; its Handler serves an expvar-style JSON snapshot
// (mount as /metrics, or use the built-in `soteria -serve`).
type Registry = obs.Registry

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Instrument registers the system's serving metrics (pipeline stage
// latencies, batcher queue waits and flush reasons, detector RE drift)
// in r and starts observing. A nil registry is a no-op. Instrument
// before serving traffic and before NewBatcher; observations are
// write-only, so decisions are bit-identical with instrumentation on or
// off, and the hot paths stay allocation-free. Training-time metrics
// are wired separately through Options.Obs.
func (s *System) Instrument(r *Registry) { s.pipeline.Instrument(r) }

// Save serializes the trained system (vocabularies, detector state,
// classifier weights) as JSON.
func (s *System) Save(w io.Writer) error { return s.pipeline.Save(w) }

// Load rebuilds a trained system from Save output.
func Load(r io.Reader) (*System, error) {
	p, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	return &System{pipeline: p}, nil
}

// Disassemble recovers the CFG of a parsed binary.
func Disassemble(bin *Binary) (*CFG, error) { return disasm.Disassemble(bin) }

// ParseBinary decodes SOTB container bytes.
func ParseBinary(raw []byte) (*Binary, error) { return isa.DecodeBinary(raw) }

// GEAMerge applies the Graph Embedding and Augmentation attack: it
// grafts target into original through shared entry/exit blocks,
// returning the adversarial binary and its CFG. The result preserves
// the original program's runtime behaviour.
func GEAMerge(original, target *Program) (*Binary, *CFG, error) {
	return gea.MergeToCFG(original, target)
}
