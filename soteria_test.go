package soteria_test

import (
	"bytes"
	"fmt"
	"testing"

	"soteria"
)

func smallOptions() soteria.Options {
	opts := soteria.DefaultOptions()
	opts.Features.TopK = 64
	opts.Features.WalkCount = 4
	opts.DetectorEpochs = 15
	opts.ClassifierEpochs = 10
	opts.Filters = 6
	opts.DenseUnits = 24
	return opts
}

func smallCorpus(t *testing.T, perClass int) []*soteria.Sample {
	t.Helper()
	gen := soteria.NewGenerator(soteria.GeneratorConfig{Seed: 3})
	var out []*soteria.Sample
	for _, c := range soteria.Classes {
		for i := 0; i < perClass; i++ {
			s, err := gen.Sample(c)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, s)
		}
	}
	return out
}

func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	corpus := smallCorpus(t, 8)
	sys, err := soteria.Train(corpus, smallOptions())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}

	dec, err := sys.Analyze(corpus[0].CFG, 123)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if dec.RE < 0 {
		t.Fatalf("negative reconstruction error: %v", dec.RE)
	}

	// Binary round trip through the public API.
	raw, err := corpus[0].Binary.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec2, err := sys.AnalyzeBinary(raw, 123)
	if err != nil {
		t.Fatalf("AnalyzeBinary: %v", err)
	}
	if dec2.RE != dec.RE {
		t.Fatal("binary path disagrees with CFG path")
	}

	// GEA through the public API.
	target := corpus[len(corpus)-1] // a Tsunami sample
	victim := corpus[0]             // a Benign sample
	bin, cfg, err := soteria.GEAMerge(victim.Program, target.Program)
	if err != nil {
		t.Fatalf("GEAMerge: %v", err)
	}
	if cfg.NumNodes() != victim.CFG.NumNodes()+target.CFG.NumNodes()+2 {
		t.Fatalf("merged CFG nodes = %d", cfg.NumNodes())
	}
	enc, err := bin.Encode()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := soteria.ParseBinary(enc)
	if err != nil {
		t.Fatalf("ParseBinary: %v", err)
	}
	recfg, err := soteria.Disassemble(parsed)
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}
	if recfg.NumNodes() != cfg.NumNodes() {
		t.Fatal("re-disassembled CFG differs")
	}
	if _, err := sys.Analyze(cfg, 999); err != nil {
		t.Fatalf("Analyze AE: %v", err)
	}
	if sys.Pipeline() == nil {
		t.Fatal("Pipeline accessor returned nil")
	}
}

func TestSaveLoadPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	corpus := smallCorpus(t, 5)
	opts := smallOptions()
	opts.DetectorEpochs = 8
	opts.ClassifierEpochs = 5
	sys, err := soteria.Train(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := soteria.Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	a, err := sys.Analyze(corpus[0].CFG, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Analyze(corpus[0].CFG, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.RE != b.RE || a.Class != b.Class {
		t.Fatalf("loaded system disagrees: %+v vs %+v", a, b)
	}
}

// Example shows the canonical train-and-analyze flow. (No output
// comparison: training runs for a few seconds, so godoc compiles this
// example without executing it.)
func Example() {
	gen := soteria.NewGenerator(soteria.GeneratorConfig{Seed: 1})
	corpus, err := gen.Corpus(map[soteria.Class]int{
		soteria.Benign: 30, soteria.Gafgyt: 50,
		soteria.Mirai: 25, soteria.Tsunami: 15,
	})
	if err != nil {
		panic(err)
	}
	sys, err := soteria.Train(corpus, soteria.DefaultOptions())
	if err != nil {
		panic(err)
	}
	dec, err := sys.Analyze(corpus[0].CFG, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(dec.Adversarial, dec.Class)
}

func TestClassConstants(t *testing.T) {
	if soteria.NumClasses != 4 || len(soteria.Classes) != 4 {
		t.Fatal("class constants wrong")
	}
	names := []string{"Benign", "Gafgyt", "Mirai", "Tsunami"}
	for i, c := range soteria.Classes {
		if c.String() != names[i] {
			t.Fatalf("class %d = %s, want %s", i, c, names[i])
		}
	}
}
